package hashring

import (
	"fmt"
	"math"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%06d", i)
	}
	return out
}

func TestPrimaryDeterministic(t *testing.T) {
	a := New(8, 64)
	b := New(8, 64)
	for _, k := range keys(100) {
		if a.Primary(k) != b.Primary(k) {
			t.Fatalf("rings disagree on %q", k)
		}
	}
}

func TestPrimaryInRange(t *testing.T) {
	r := New(5, 16)
	for _, k := range keys(1000) {
		n := r.Primary(k)
		if n < 0 || int(n) >= 5 {
			t.Fatalf("primary %d out of range", n)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := New(0, 16)
	if r.Primary("k") != -1 {
		t.Fatal("empty ring must return -1")
	}
	if got := r.Replicas("k", 2); got != nil {
		t.Fatalf("empty ring replicas = %v", got)
	}
}

func TestReplicasDistinct(t *testing.T) {
	r := New(6, 32)
	for _, k := range keys(200) {
		reps := r.Replicas(k, 3)
		if len(reps) != 3 {
			t.Fatalf("%q: %d replicas want 3", k, len(reps))
		}
		seen := map[NodeID]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("%q: duplicate replica %d", k, n)
			}
			seen[n] = true
		}
		if reps[0] != r.Primary(k) {
			t.Fatalf("%q: first replica %d is not primary %d", k, reps[0], r.Primary(k))
		}
	}
}

func TestReplicasClamped(t *testing.T) {
	r := New(3, 8)
	if got := r.Replicas("k", 10); len(got) != 3 {
		t.Fatalf("rf>n must clamp: got %d", len(got))
	}
	if got := r.Replicas("k", 0); got != nil {
		t.Fatalf("rf=0 must return nil, got %v", got)
	}
}

func TestDistributionCountsAllKeys(t *testing.T) {
	r := New(4, 32)
	ks := keys(1000)
	dist := r.Distribution(ks)
	total := 0
	for _, c := range dist {
		total += c
	}
	if total != 1000 {
		t.Fatalf("distribution total %d want 1000", total)
	}
	if len(dist) != 4 {
		t.Fatalf("distribution has %d nodes want 4 (zero-count nodes must appear)", len(dist))
	}
}

func TestMaxLoadMatchesDistribution(t *testing.T) {
	r := New(4, 32)
	ks := keys(500)
	dist := r.Distribution(ks)
	node, max := r.MaxLoad(ks)
	if dist[node] != max {
		t.Fatalf("MaxLoad (%d,%d) disagrees with distribution %v", node, max, dist)
	}
	for _, c := range dist {
		if c > max {
			t.Fatalf("node with %d keys exceeds reported max %d", c, max)
		}
	}
}

// With many keys the sampling noise (Formula 1's term) vanishes and the
// ring's imbalance floors at the vnode arc-share noise, which scales as
// ~1/sqrt(vnodes). Formula 1 itself models uniform random assignment and
// is verified in the balls package; here we check the ring obeys its own
// floor.
func TestImbalanceShrinksWithKeys(t *testing.T) {
	r := New(8, 128)
	small := r.Imbalance(keys(100))
	large := r.Imbalance(keys(100000))
	if large >= small {
		t.Fatalf("imbalance did not shrink: %d keys %.3f vs %d keys %.3f",
			100, small, 100000, large)
	}
	arcNoise := 3 / math.Sqrt(128)
	if large > arcNoise {
		t.Fatalf("imbalance %.4f above vnode arc noise bound %.4f", large, arcNoise)
	}
}

func TestImbalanceEdgeCases(t *testing.T) {
	r := New(4, 16)
	if r.Imbalance(nil) != 0 {
		t.Fatal("no keys must mean zero imbalance")
	}
}

// Virtual nodes must smooth ownership: with vnodes the per-node token
// arc variance shrinks, so distribution of many keys is closer to even.
func TestVnodesImproveBalance(t *testing.T) {
	ks := keys(200000)
	few := New(8, 1).Imbalance(ks)
	many := New(8, 256).Imbalance(ks)
	if many >= few {
		t.Fatalf("vnodes did not improve balance: 1 vnode %.3f vs 256 vnodes %.3f", few, many)
	}
}

func TestNodesAccessor(t *testing.T) {
	r := New(3, 4)
	ns := r.Nodes()
	if len(ns) != 3 || r.Size() != 3 {
		t.Fatalf("nodes %v size %d", ns, r.Size())
	}
	ns[0] = 99 // must not alias internal state
	if r.Nodes()[0] == 99 {
		t.Fatal("Nodes() leaked internal slice")
	}
}

func BenchmarkPrimary(b *testing.B) {
	r := New(16, 256)
	ks := keys(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Primary(ks[i%len(ks)])
	}
}
