package hashring

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestEpochStartsAtOneAndIncrements(t *testing.T) {
	topo := New(3, 16)
	if topo.Epoch() != 1 {
		t.Fatalf("fresh topology epoch %d want 1", topo.Epoch())
	}
	next, _, err := topo.AddNode(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch() != 2 {
		t.Fatalf("epoch after join %d want 2", next.Epoch())
	}
	if topo.Epoch() != 1 {
		t.Fatal("AddNode mutated the old topology's epoch")
	}
	after, _, err := next.RemoveNode(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch() != 3 {
		t.Fatalf("epoch after leave %d want 3", after.Epoch())
	}
}

// Epoch monotonicity over a random walk of joins and leaves.
func TestEpochMonotonicUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	topo := New(4, 16)
	nextID := NodeID(4)
	last := topo.Epoch()
	for i := 0; i < 40; i++ {
		var err error
		var next *Topology
		if topo.Size() > 2 && rng.Intn(2) == 0 {
			victim := topo.Nodes()[rng.Intn(topo.Size())]
			next, _, err = topo.RemoveNode(victim, 1)
		} else {
			next, _, err = topo.AddNode(nextID, 1)
			nextID++
		}
		if err != nil {
			t.Fatal(err)
		}
		if next.Epoch() <= last {
			t.Fatalf("epoch %d did not advance past %d", next.Epoch(), last)
		}
		last = next.Epoch()
		topo = next
	}
}

func TestAddRemoveValidation(t *testing.T) {
	topo := New(2, 8)
	if _, _, err := topo.AddNode(1, 1); err == nil {
		t.Fatal("duplicate AddNode accepted")
	}
	if _, _, err := topo.RemoveNode(9, 1); err == nil {
		t.Fatal("RemoveNode of a non-member accepted")
	}
	one := New(1, 8)
	if _, _, err := one.RemoveNode(0, 1); err == nil {
		t.Fatal("removing the last node accepted")
	}
}

func TestFromNodesMatchesIncrementalBuild(t *testing.T) {
	topo := New(4, 32)
	next, _, err := topo.AddNode(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := FromNodes(next.Epoch(), next.Nodes(), next.Vnodes())
	if rebuilt.Epoch() != next.Epoch() || rebuilt.Size() != next.Size() {
		t.Fatal("FromNodes disagrees on epoch or size")
	}
	for i := 0; i < 2000; i++ {
		pk := fmt.Sprintf("key-%05d", i)
		if rebuilt.Primary(pk) != next.Primary(pk) {
			t.Fatalf("FromNodes placement diverges on %q", pk)
		}
		r1, r2 := rebuilt.Replicas(pk, 3), next.Replicas(pk, 3)
		for j := range r1 {
			if r1[j] != r2[j] {
				t.Fatalf("FromNodes replicas diverge on %q: %v vs %v", pk, r1, r2)
			}
		}
	}
}

// Diff completeness at rf=1: for every key, the primary changed iff the
// key's token is covered by exactly one move, and that move's endpoints
// are the old and new primaries. Moved ranges exactly cover old⊖new
// ownership.
func TestDiffCompletenessOnJoin(t *testing.T) {
	old := New(6, 48)
	next, moves, err := old.AddNode(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30000; i++ {
		pk := fmt.Sprintf("key-%06d", i)
		tok := Token(pk)
		covering := 0
		var mv RangeMove
		for _, m := range moves {
			if m.Contains(tok) {
				covering++
				mv = m
			}
		}
		was, now := old.Primary(pk), next.Primary(pk)
		if was == now {
			if covering != 0 {
				t.Fatalf("%q: unmoved key covered by %d moves", pk, covering)
			}
			continue
		}
		if covering != 1 {
			t.Fatalf("%q: moved key covered by %d moves, want exactly 1", pk, covering)
		}
		if mv.From != was || mv.To != now {
			t.Fatalf("%q: move %v does not match primaries %d->%d", pk, mv, was, now)
		}
	}
}

func TestDiffCompletenessOnLeave(t *testing.T) {
	old := New(7, 48)
	next, moves, err := old.RemoveNode(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30000; i++ {
		pk := fmt.Sprintf("key-%06d", i)
		tok := Token(pk)
		was, now := old.Primary(pk), next.Primary(pk)
		covering := 0
		var mv RangeMove
		for _, m := range moves {
			if m.Contains(tok) {
				covering++
				mv = m
			}
		}
		if was == now {
			if covering != 0 {
				t.Fatalf("%q: unmoved key covered by %d moves", pk, covering)
			}
			continue
		}
		if was != 3 {
			t.Fatalf("%q: primary changed %d->%d though only node 3 left", pk, was, now)
		}
		if covering != 1 || mv.From != was || mv.To != now {
			t.Fatalf("%q: bad coverage (%d moves, %v) for %d->%d", pk, covering, mv, was, now)
		}
	}
}

// Replica-aware diff: at rf>1 every key whose replica set gained a node
// has a move delivering its token to that node from an old owner.
func TestDiffCoversReplicaGains(t *testing.T) {
	const rf = 3
	old := New(5, 32)
	next, moves, err := old.AddNode(5, rf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		pk := fmt.Sprintf("key-%06d", i)
		tok := Token(pk)
		was := map[NodeID]bool{}
		for _, n := range old.Replicas(pk, rf) {
			was[n] = true
		}
		for _, n := range next.Replicas(pk, rf) {
			if was[n] {
				continue
			}
			found := false
			for _, m := range moves {
				if m.To == n && m.Contains(tok) {
					if !was[m.From] {
						t.Fatalf("%q: move source %d was not an old owner", pk, m.From)
					}
					found = true
				}
			}
			if !found {
				t.Fatalf("%q: gained owner %d has no covering move", pk, n)
			}
		}
	}
}

// Bounded movement: one join into an n-node ring moves at most ~K/n of
// K keys (2x slack for vnode arc noise).
func TestJoinMovementBounded(t *testing.T) {
	const n, K = 8, 40000
	old := New(n, 64)
	next, _, err := old.AddNode(NodeID(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < K; i++ {
		pk := fmt.Sprintf("key-%06d", i)
		if old.Primary(pk) != next.Primary(pk) {
			moved++
		}
	}
	bound := 2 * K / (n + 1)
	if moved > bound {
		t.Fatalf("join moved %d of %d keys, above 2K/N bound %d", moved, K, bound)
	}
	if moved == 0 {
		t.Fatal("join moved nothing; diff is vacuous")
	}
	// And every moved key lands on the new node.
	for i := 0; i < K; i++ {
		pk := fmt.Sprintf("key-%06d", i)
		if old.Primary(pk) != next.Primary(pk) && next.Primary(pk) != NodeID(n) {
			t.Fatalf("%q moved to %d, not the joining node", pk, next.Primary(pk))
		}
	}
}

// Retirements mirror the diff: after a join, the ranges the old owners
// retire are exactly the ranges the new node gained.
func TestRetirementsMirrorMoves(t *testing.T) {
	old := New(4, 32)
	next, moves, err := old.AddNode(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	retire := Retirements(old, next, 1)
	inMoves := func(tok int64) bool {
		for _, m := range moves {
			if m.Contains(tok) {
				return true
			}
		}
		return false
	}
	inRetire := func(tok int64) bool {
		for _, r := range retire {
			if r.Lo <= tok && tok <= r.Hi {
				return true
			}
		}
		return false
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50000; i++ {
		tok := int64(rng.Uint64())
		if inMoves(tok) != inRetire(tok) {
			t.Fatalf("token %d: move coverage %v != retire coverage %v", tok, inMoves(tok), inRetire(tok))
		}
	}
	for _, probe := range []int64{math.MinInt64, math.MaxInt64, 0} {
		if inMoves(probe) != inRetire(probe) {
			t.Fatalf("boundary token %d: move/retire coverage disagrees", probe)
		}
	}
	// At rf=1 every retirement belongs to the node that was primary.
	for _, r := range retire {
		if got := old.PrimaryForToken(r.Hi); got != r.Node {
			t.Fatalf("retirement %v not owned by old primary %d", r, got)
		}
	}
}

func TestOwnersAtMatchesReplicas(t *testing.T) {
	topo := New(5, 32)
	for i := 0; i < 1000; i++ {
		pk := fmt.Sprintf("key-%04d", i)
		byKey := topo.Replicas(pk, 3)
		byTok := topo.OwnersAt(Token(pk), 3)
		for j := range byKey {
			if byKey[j] != byTok[j] {
				t.Fatalf("%q: Replicas %v != OwnersAt %v", pk, byKey, byTok)
			}
		}
	}
}
