package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	l := New(1)
	l.Set([]byte("b"), []byte("2"))
	l.Set([]byte("a"), []byte("1"))
	l.Set([]byte("c"), []byte("3"))
	for _, k := range []string{"a", "b", "c"} {
		v, ok := l.Get([]byte(k))
		if !ok {
			t.Fatalf("missing key %q", k)
		}
		if string(v) == "" {
			t.Fatalf("empty value for %q", k)
		}
	}
	if _, ok := l.Get([]byte("zz")); ok {
		t.Fatal("found absent key")
	}
	if l.Len() != 3 {
		t.Fatalf("len %d want 3", l.Len())
	}
}

func TestOverwriteKeepsLength(t *testing.T) {
	l := New(1)
	l.Set([]byte("k"), []byte("old"))
	l.Set([]byte("k"), []byte("newvalue"))
	if l.Len() != 1 {
		t.Fatalf("len %d want 1", l.Len())
	}
	v, _ := l.Get([]byte("k"))
	if string(v) != "newvalue" {
		t.Fatalf("got %q", v)
	}
}

func TestBytesAccounting(t *testing.T) {
	l := New(1)
	l.Set([]byte("key1"), []byte("vvvv"))
	if l.Bytes() != 8 {
		t.Fatalf("bytes %d want 8", l.Bytes())
	}
	l.Set([]byte("key1"), []byte("vv")) // shrink value
	if l.Bytes() != 6 {
		t.Fatalf("bytes %d want 6", l.Bytes())
	}
	l.Delete([]byte("key1"))
	if l.Bytes() != 0 {
		t.Fatalf("bytes %d want 0 after delete", l.Bytes())
	}
}

func TestDelete(t *testing.T) {
	l := New(1)
	for i := 0; i < 100; i++ {
		l.Set([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	for i := 0; i < 100; i += 2 {
		if !l.Delete([]byte(fmt.Sprintf("k%03d", i))) {
			t.Fatalf("delete k%03d failed", i)
		}
	}
	if l.Delete([]byte("absent")) {
		t.Fatal("deleted absent key")
	}
	if l.Len() != 50 {
		t.Fatalf("len %d want 50", l.Len())
	}
	for i := 0; i < 100; i++ {
		_, ok := l.Get([]byte(fmt.Sprintf("k%03d", i)))
		if want := i%2 == 1; ok != want {
			t.Fatalf("k%03d present=%v want %v", i, ok, want)
		}
	}
}

func TestOrderedIteration(t *testing.T) {
	l := New(42)
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for _, k := range keys {
		l.Set([]byte(k), []byte(k))
	}
	var got []string
	for it := l.First(); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("iterated %d keys want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: %q want %q", i, got[i], want[i])
		}
	}
}

func TestSeek(t *testing.T) {
	l := New(3)
	for i := 0; i < 100; i += 10 {
		l.Set([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	it := l.Seek([]byte("k015"))
	if !it.Valid() || string(it.Key()) != "k020" {
		t.Fatalf("seek landed on %q want k020", it.Key())
	}
	it = l.Seek([]byte("k090"))
	if !it.Valid() || string(it.Key()) != "k090" {
		t.Fatalf("exact seek landed on %q want k090", it.Key())
	}
	it = l.Seek([]byte("k999"))
	if it.Valid() {
		t.Fatal("seek past end must be invalid")
	}
}

func TestEmptyList(t *testing.T) {
	l := New(1)
	if it := l.First(); it.Valid() {
		t.Fatal("empty list iterator valid")
	}
	if l.Delete([]byte("x")) {
		t.Fatal("delete on empty list returned true")
	}
}

// Property: the skip list agrees with a reference map plus sorted keys.
func TestAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	l := New(7)
	ref := map[string]string{}
	for op := 0; op < 5000; op++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(300))
		switch rng.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("val-%d", op)
			l.Set([]byte(k), []byte(v))
			ref[k] = v
		case 2:
			got := l.Delete([]byte(k))
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: delete(%q)=%v want %v", op, k, got, want)
			}
			delete(ref, k)
		}
	}
	if l.Len() != len(ref) {
		t.Fatalf("len %d want %d", l.Len(), len(ref))
	}
	var refKeys []string
	for k := range ref {
		refKeys = append(refKeys, k)
	}
	sort.Strings(refKeys)
	i := 0
	for it := l.First(); it.Valid(); it.Next() {
		if string(it.Key()) != refKeys[i] {
			t.Fatalf("iteration position %d: %q want %q", i, it.Key(), refKeys[i])
		}
		if string(it.Value()) != ref[refKeys[i]] {
			t.Fatalf("value mismatch at %q", it.Key())
		}
		i++
	}
	if i != len(refKeys) {
		t.Fatalf("iterated %d keys want %d", i, len(refKeys))
	}
}

func TestQuickSetThenGet(t *testing.T) {
	l := New(5)
	f := func(key, value []byte) bool {
		k := append([]byte(nil), key...)
		v := append([]byte(nil), value...)
		l.Set(k, v)
		got, ok := l.Get(k)
		return ok && bytes.Equal(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSet(b *testing.B) {
	l := New(1)
	keys := make([][]byte, b.N)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%09d", i*2654435761%1000000007))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Set(keys[i], keys[i])
	}
}

func BenchmarkGet(b *testing.B) {
	l := New(1)
	const n = 100000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%09d", i))
		l.Set(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Get([]byte(fmt.Sprintf("key-%09d", i%n)))
	}
}
