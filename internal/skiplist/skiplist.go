// Package skiplist provides an ordered byte-key map used as the memtable
// substrate. A skip list gives O(log n) insert and seek with cheap ordered
// iteration, which is what the write path (inserts in arbitrary order) and
// the read path (clustering-key range scans) both need.
//
// Concurrency: the list is single-writer, multi-reader. Mutations (Set,
// Update, Delete) must be externally serialized — the storage engine
// already does this with its per-shard write lock — but readers (Get,
// Seek, iterators, Len, Bytes) need no lock at all: every link
// and value is published with an atomic store and loaded with an atomic
// load, so a reader either sees a fully-linked node or none at all.
// This is what makes the engine's point-read fast path lock-free.
package skiplist

import (
	"bytes"
	"math/rand"
	"sync/atomic"
)

const maxHeight = 20

// List is an ordered map from []byte keys to []byte values.
type List struct {
	head   *node
	height atomic.Int32
	length atomic.Int64
	rng    *rand.Rand
	bytes  atomic.Int64 // approximate payload size, drives memtable flush
}

// node links are atomic so a concurrent reader traversing the list sees
// either the pre-insert or post-insert state of every pointer; the key
// is immutable after insert and the value pointer is swapped atomically
// on update, so a reader never observes a half-written cell.
type node struct {
	key   []byte
	value atomic.Pointer[[]byte]
	next  []atomic.Pointer[node]
}

func (n *node) loadValue() []byte {
	if v := n.value.Load(); v != nil {
		return *v
	}
	return nil
}

// New creates an empty list. Tower heights are drawn from the given seed
// so tests are reproducible.
func New(seed int64) *List {
	l := &List{
		head: &node{next: make([]atomic.Pointer[node], maxHeight)},
		rng:  rand.New(rand.NewSource(seed)),
	}
	l.height.Store(1)
	return l
}

// Len returns the number of entries.
func (l *List) Len() int { return int(l.length.Load()) }

// Bytes returns the approximate payload size (keys + values) in bytes.
func (l *List) Bytes() int64 { return l.bytes.Load() }

func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight && l.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGE locates the first node with key >= target. prev, when non-nil,
// receives the predecessor at every level (for insertion).
func (l *List) findGE(key []byte, prev []*node) *node {
	x := l.head
	for level := int(l.height.Load()) - 1; level >= 0; level-- {
		for {
			nx := x.next[level].Load()
			if nx == nil || bytes.Compare(nx.key, key) >= 0 {
				break
			}
			x = nx
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0].Load()
}

// Set inserts or replaces the value for key. The key and value slices are
// stored as given; callers that reuse buffers must copy first.
func (l *List) Set(key, value []byte) {
	l.Update(key, func([]byte, bool) ([]byte, bool) { return value, true })
}

// Update inserts or replaces the value for key through a decision
// callback, finding the position once: f receives the current value (nil,
// false when the key is absent) and returns the value to store plus
// whether to store it at all. The memtable uses it for last-write-wins
// puts — compare versions and keep the newer — without paying a second
// traversal for the read. It reports whether a new key was inserted (as
// opposed to an existing one updated or left alone); the engine's
// partition index uses that as its invalidation signal.
func (l *List) Update(key []byte, f func(old []byte, exists bool) ([]byte, bool)) bool {
	prev := make([]*node, maxHeight)
	for i := range prev {
		prev[i] = l.head
	}
	if n := l.findGE(key, prev); n != nil && bytes.Equal(n.key, key) {
		old := n.loadValue()
		value, store := f(old, true)
		if store {
			l.bytes.Add(int64(len(value) - len(old)))
			n.value.Store(&value)
		}
		return false
	}
	value, store := f(nil, false)
	if !store {
		return false
	}
	h := l.randomHeight()
	if h > int(l.height.Load()) {
		l.height.Store(int32(h))
	}
	n := &node{key: key, next: make([]atomic.Pointer[node], h)}
	n.value.Store(&value)
	// Wire the new node's own links before publishing it: bottom-up, so
	// a reader that finds n at any level can always continue at every
	// lower level. The single-writer discipline means prev links cannot
	// change between the loads and the stores.
	for level := 0; level < h; level++ {
		n.next[level].Store(prev[level].next[level].Load())
	}
	for level := 0; level < h; level++ {
		prev[level].next[level].Store(n)
	}
	l.length.Add(1)
	l.bytes.Add(int64(len(key) + len(value)))
	return true
}

// Get returns the value stored for key, or nil and false.
func (l *List) Get(key []byte) ([]byte, bool) {
	n := l.findGE(key, nil)
	if n != nil && bytes.Equal(n.key, key) {
		return n.loadValue(), true
	}
	return nil, false
}

// Delete removes key and reports whether it was present. Like every
// mutation it requires external serialization; a concurrent reader
// already past the unlinked node keeps traversing safely because the
// node's own links are left intact.
func (l *List) Delete(key []byte) bool {
	prev := make([]*node, maxHeight)
	for i := range prev {
		prev[i] = l.head
	}
	n := l.findGE(key, prev)
	if n == nil || !bytes.Equal(n.key, key) {
		return false
	}
	for level := 0; level < len(n.next); level++ {
		if prev[level].next[level].Load() == n {
			prev[level].next[level].Store(n.next[level].Load())
		}
	}
	l.length.Add(-1)
	l.bytes.Add(-int64(len(n.key) + len(n.loadValue())))
	return true
}

// Iterator walks entries in ascending key order. It is safe to use
// concurrently with the single writer: cells inserted behind the
// iterator's position are skipped, cells inserted ahead are seen.
type Iterator struct {
	n *node
}

// Seek positions an iterator at the first entry with key >= target.
func (l *List) Seek(key []byte) *Iterator {
	return &Iterator{n: l.findGE(key, nil)}
}

// First positions an iterator at the smallest entry.
func (l *List) First() *Iterator {
	return &Iterator{n: l.head.next[0].Load()}
}

// Valid reports whether the iterator points at an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Key returns the current key. Only valid when Valid() is true.
func (it *Iterator) Key() []byte { return it.n.key }

// Value returns the current value. Only valid when Valid() is true.
func (it *Iterator) Value() []byte { return it.n.loadValue() }

// Next advances to the following entry.
func (it *Iterator) Next() { it.n = it.n.next[0].Load() }
