// Package skiplist provides an ordered byte-key map used as the memtable
// substrate. A skip list gives O(log n) insert and seek with cheap ordered
// iteration, which is what the write path (inserts in arbitrary order) and
// the read path (clustering-key range scans) both need.
//
// The list is not safe for concurrent use on its own; the memtable layers
// an RWMutex on top, mirroring the single-writer flush discipline of the
// storage engine.
package skiplist

import (
	"bytes"
	"math/rand"
)

const maxHeight = 20

// List is an ordered map from []byte keys to []byte values.
type List struct {
	head   *node
	height int
	length int
	rng    *rand.Rand
	bytes  int64 // approximate payload size, drives memtable flush
}

type node struct {
	key   []byte
	value []byte
	next  []*node
}

// New creates an empty list. Tower heights are drawn from the given seed
// so tests are reproducible.
func New(seed int64) *List {
	return &List{
		head:   &node{next: make([]*node, maxHeight)},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Len returns the number of entries.
func (l *List) Len() int { return l.length }

// Bytes returns the approximate payload size (keys + values) in bytes.
func (l *List) Bytes() int64 { return l.bytes }

func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight && l.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGE locates the first node with key >= target. prev, when non-nil,
// receives the predecessor at every level (for insertion).
func (l *List) findGE(key []byte, prev []*node) *node {
	x := l.head
	for level := l.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Set inserts or replaces the value for key. The key and value slices are
// stored as given; callers that reuse buffers must copy first.
func (l *List) Set(key, value []byte) {
	l.Update(key, func([]byte, bool) ([]byte, bool) { return value, true })
}

// Update inserts or replaces the value for key through a decision
// callback, finding the position once: f receives the current value (nil,
// false when the key is absent) and returns the value to store plus
// whether to store it at all. The memtable uses it for last-write-wins
// puts — compare versions and keep the newer — without paying a second
// traversal for the read.
func (l *List) Update(key []byte, f func(old []byte, exists bool) ([]byte, bool)) {
	prev := make([]*node, maxHeight)
	for i := range prev {
		prev[i] = l.head
	}
	if n := l.findGE(key, prev); n != nil && bytes.Equal(n.key, key) {
		value, store := f(n.value, true)
		if store {
			l.bytes += int64(len(value) - len(n.value))
			n.value = value
		}
		return
	}
	value, store := f(nil, false)
	if !store {
		return
	}
	h := l.randomHeight()
	if h > l.height {
		l.height = h
	}
	n := &node{key: key, value: value, next: make([]*node, h)}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	l.length++
	l.bytes += int64(len(key) + len(value))
}

// Get returns the value stored for key, or nil and false.
func (l *List) Get(key []byte) ([]byte, bool) {
	n := l.findGE(key, nil)
	if n != nil && bytes.Equal(n.key, key) {
		return n.value, true
	}
	return nil, false
}

// Delete removes key and reports whether it was present.
func (l *List) Delete(key []byte) bool {
	prev := make([]*node, maxHeight)
	for i := range prev {
		prev[i] = l.head
	}
	n := l.findGE(key, prev)
	if n == nil || !bytes.Equal(n.key, key) {
		return false
	}
	for level := 0; level < len(n.next); level++ {
		if prev[level].next[level] == n {
			prev[level].next[level] = n.next[level]
		}
	}
	l.length--
	l.bytes -= int64(len(n.key) + len(n.value))
	return true
}

// Iterator walks entries in ascending key order.
type Iterator struct {
	n *node
}

// Seek positions an iterator at the first entry with key >= target.
func (l *List) Seek(key []byte) *Iterator {
	return &Iterator{n: l.findGE(key, nil)}
}

// First positions an iterator at the smallest entry.
func (l *List) First() *Iterator {
	return &Iterator{n: l.head.next[0]}
}

// Valid reports whether the iterator points at an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Key returns the current key. Only valid when Valid() is true.
func (it *Iterator) Key() []byte { return it.n.key }

// Value returns the current value. Only valid when Valid() is true.
func (it *Iterator) Value() []byte { return it.n.value }

// Next advances to the following entry.
func (it *Iterator) Next() { it.n = it.n.next[0] }
