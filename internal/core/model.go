// Package core implements the paper's primary contribution: the
// analytical performance model of Sections VI-VII for distributed
// master-slave applications on key-value stores.
//
// The model composes per-component regressions (measured on a concrete
// hardware/software stack, or taken from the paper's published fit) into
// an end-to-end prediction
//
//	total = max{ master_speed, slowest_slave, result_fetching }   (Formula 2)
//
// with
//
//	master_speed    = keys · time_msg                              (Formula 3)
//	slowest_slave   = key_max · DBmodel                            (Formula 4)
//	key_max         = keys/n + sqrt(keys·ln(n)/n)                  (Formula 5)
//	DBmodel         = querytime(rowsize)/parallelism(rowsize)      (Formula 8)
//
// where querytime is the piecewise-linear database latency (Formula 6,
// with the column-index break at 1425 items) and parallelism is the
// logarithmic speed-up fit (Formula 7). The imbalance ratio
//
//	p ≈ sqrt(ln(n)·n/m)                                            (Formula 1)
//
// follows Berenbrink et al.'s heavily-loaded balls-into-bins bound.
//
// On top of the forward model the package provides the paper's analysis
// tools: the optimal-partition-count optimizer (Figure 9), the loss
// decomposition between imbalance and database efficiency (Figure 10),
// and the single-master scalability limits (Section VII, Figure 11).
package core

import (
	"fmt"
	"math"
)

// ImbalanceRatio is Formula 1: the expected relative overload of the
// most loaded node when m keys spread over n nodes, p ≈ sqrt(ln(n)·n/m).
// Zero when m or n make the question degenerate.
func ImbalanceRatio(keys, nodes int) float64 {
	if keys <= 0 || nodes <= 1 {
		return 0
	}
	return math.Sqrt(math.Log(float64(nodes)) * float64(nodes) / float64(keys))
}

// MaxKeysPerNode is Formula 5: the high-probability number of keys on
// the most loaded of n nodes, keys/n + sqrt(keys·ln(n)/n).
func MaxKeysPerNode(keys, nodes int) float64 {
	if keys <= 0 || nodes <= 0 {
		return 0
	}
	n := float64(nodes)
	m := float64(keys)
	return m/n + math.Sqrt(m*math.Log(n)/n)
}

// DBModel is the database component model: Formulas 6, 7 and 8. Times
// are in milliseconds and row sizes in elements, as in the paper.
type DBModel struct {
	// Piecewise query latency (Formula 6). Break is the row size at
	// which the column index appears (1425 items ≈ 64KB in the paper).
	Break  float64
	LeftA  float64 // intercept for rowSize <= Break
	LeftB  float64 // slope for rowSize <= Break
	RightA float64 // intercept for rowSize > Break
	RightB float64 // slope for rowSize > Break
	// Parallelism speed-up fit (Formula 7): ParA + ParB·ln(rowSize),
	// clamped to at least 1.
	ParA, ParB float64
}

// QueryTimeMs is Formula 6: single-request latency for a row of the
// given size, in milliseconds.
func (m DBModel) QueryTimeMs(rowSize float64) float64 {
	if rowSize <= 0 {
		rowSize = 1
	}
	if rowSize > m.Break {
		return m.RightA + m.RightB*rowSize
	}
	return m.LeftA + m.LeftB*rowSize
}

// Speedup is Formula 7: the throughput gain available from running
// requests of this row size at their optimal parallelism, never below 1.
func (m DBModel) Speedup(rowSize float64) float64 {
	if rowSize <= 0 {
		rowSize = 1
	}
	s := m.ParA + m.ParB*math.Log(rowSize)
	if s < 1 {
		return 1
	}
	return s
}

// PerRequestMs is Formula 8, DBmodel: the effective per-request cost of
// a node that processes requests of this row size at optimal
// parallelism.
func (m DBModel) PerRequestMs(rowSize float64) float64 {
	return m.QueryTimeMs(rowSize) / m.Speedup(rowSize)
}

// PaperDBModel returns the constants the paper fitted on its
// Cassandra/Xeon stack (Formulas 6 and 7 verbatim).
func PaperDBModel() DBModel {
	return DBModel{
		Break: 1425,
		LeftA: 1.163, LeftB: 0.0387,
		RightA: 0.773, RightB: 0.0439,
		ParA: 12.562, ParB: -1.084,
	}
}

// System is the full Formula 2 model: the database plus the master's
// messaging costs.
type System struct {
	DB DBModel
	// MsgSendMs is time_msg of Formula 3: the master's end-to-end cost
	// to issue one request, in milliseconds.
	MsgSendMs float64
	// MsgRecvMs is the master's per-result cost in the result-fetching
	// phase, in milliseconds.
	MsgRecvMs float64
	// GCFraction inflates the prediction multiplicatively to account
	// for collector pauses; the paper adds it only for the
	// coarse-grained validation line ("dbModel+GC" in Figure 8).
	GCFraction float64
}

// The paper's measured master costs (Section V-B): 150 µs per message
// with Java default serialization, 19 µs after the Kryo optimization.
const (
	PaperSlowMsgMs = 0.150
	PaperFastMsgMs = 0.019
)

// PaperSystem returns the paper's complete fitted system with the
// optimized (fast) master.
func PaperSystem() System {
	return System{DB: PaperDBModel(), MsgSendMs: PaperFastMsgMs, MsgRecvMs: PaperFastMsgMs / 2}
}

// PaperSlowSystem returns the paper's system before the serialization
// fix: the master that needed 1.5 s to issue ten thousand messages.
func PaperSlowSystem() System {
	return System{DB: PaperDBModel(), MsgSendMs: PaperSlowMsgMs, MsgRecvMs: PaperSlowMsgMs / 2}
}

// Bottleneck identifies which Formula 2 term dominates a prediction.
type Bottleneck string

// The three candidate bottlenecks of Formula 2.
const (
	BottleneckMaster Bottleneck = "master"
	BottleneckSlave  Bottleneck = "slowest-slave"
	BottleneckFetch  Bottleneck = "result-fetching"
)

// Prediction is the model output for one configuration.
type Prediction struct {
	Keys       int
	Nodes      int
	RowSize    float64
	KeysMax    float64 // Formula 5
	MasterMs   float64 // Formula 3
	SlaveMs    float64 // Formula 4
	FetchMs    float64
	TotalMs    float64 // Formula 2 (including GC inflation if configured)
	Bottleneck Bottleneck
	// BalancedMs is the hypothetical slave time under a perfectly
	// uniform distribution (keys/n instead of key_max) — the paper's
	// "balanced" line in Figures 1 and 5.
	BalancedMs float64
}

func (p Prediction) String() string {
	return fmt.Sprintf("keys=%d nodes=%d rowSize=%.0f: total=%.1fms (master=%.1f slave=%.1f fetch=%.1f, %s-bound)",
		p.Keys, p.Nodes, p.RowSize, p.TotalMs, p.MasterMs, p.SlaveMs, p.FetchMs, p.Bottleneck)
}

// Predict evaluates Formula 2 for a query over totalElements elements
// split into `keys` partitions on `nodes` nodes.
func (s System) Predict(totalElements, keys, nodes int) Prediction {
	if keys < 1 {
		keys = 1
	}
	if nodes < 1 {
		nodes = 1
	}
	rowSize := float64(totalElements) / float64(keys)
	keysMax := MaxKeysPerNode(keys, nodes)
	per := s.DB.PerRequestMs(rowSize)

	p := Prediction{
		Keys:       keys,
		Nodes:      nodes,
		RowSize:    rowSize,
		KeysMax:    keysMax,
		MasterMs:   float64(keys) * s.MsgSendMs,
		SlaveMs:    keysMax * per,
		FetchMs:    float64(keys) * s.MsgRecvMs,
		BalancedMs: float64(keys) / float64(nodes) * per,
	}
	p.TotalMs = p.MasterMs
	p.Bottleneck = BottleneckMaster
	if p.SlaveMs > p.TotalMs {
		p.TotalMs = p.SlaveMs
		p.Bottleneck = BottleneckSlave
	}
	if p.FetchMs > p.TotalMs {
		p.TotalMs = p.FetchMs
		p.Bottleneck = BottleneckFetch
	}
	p.TotalMs *= 1 + s.GCFraction
	return p
}

// OptimalKeys searches [minKeys, maxKeys] for the partition count that
// minimizes the predicted total time — the optimizer behind Figure 9.
// The search is exhaustive over a geometric grid followed by a local
// refinement, which is robust to the discontinuity at DB.Break.
func (s System) OptimalKeys(totalElements, nodes, minKeys, maxKeys int) (int, Prediction) {
	if minKeys < 1 {
		minKeys = 1
	}
	if maxKeys < minKeys {
		maxKeys = minKeys
	}
	bestKeys := minKeys
	best := s.Predict(totalElements, minKeys, nodes)
	// Geometric sweep: ~1% steps.
	for k := minKeys; k <= maxKeys; k = grow(k) {
		if p := s.Predict(totalElements, k, nodes); p.TotalMs < best.TotalMs {
			best, bestKeys = p, k
		}
	}
	// Local refinement around the winner.
	lo, hi := bestKeys-bestKeys/50-2, bestKeys+bestKeys/50+2
	if lo < minKeys {
		lo = minKeys
	}
	if hi > maxKeys {
		hi = maxKeys
	}
	for k := lo; k <= hi; k++ {
		if p := s.Predict(totalElements, k, nodes); p.TotalMs < best.TotalMs {
			best, bestKeys = p, k
		}
	}
	return bestKeys, best
}

func grow(k int) int {
	next := k + k/100
	if next == k {
		return k + 1
	}
	return next
}

// Loss decomposes the gap to ideal linear scalability at a given
// configuration — the two stacked contributions of Figure 10.
type Loss struct {
	// TotalPct is how much slower the predicted time is than ideal
	// linear scaling of the single-node optimum, in percent.
	TotalPct float64
	// ImbalancePct is the share caused by workload imbalance (key_max
	// versus keys/n).
	ImbalancePct float64
	// EfficiencyPct is the remainder: database efficiency the optimizer
	// sacrificed by moving away from the single-node-optimal partition
	// count (plus any master/fetch overhead).
	EfficiencyPct float64
}

// LossAtOptimum computes Figure 10's numbers for one node count: how far
// the best achievable configuration stays from ideal scaling, and how
// much of that is imbalance versus sacrificed database efficiency.
func (s System) LossAtOptimum(totalElements, nodes, minKeys, maxKeys int) Loss {
	_, single := s.OptimalKeys(totalElements, 1, minKeys, maxKeys)
	ideal := single.TotalMs / float64(nodes)
	_, multi := s.OptimalKeys(totalElements, nodes, minKeys, maxKeys)

	total := (multi.TotalMs - ideal) / ideal * 100
	// Imbalance share: the same configuration with a perfectly uniform
	// distribution would run in BalancedMs.
	imb := (multi.TotalMs - multi.BalancedMs*(1+s.GCFraction)) / ideal * 100
	if imb < 0 {
		imb = 0
	}
	eff := total - imb
	if eff < 0 {
		eff = 0
	}
	return Loss{TotalPct: total, ImbalancePct: imb, EfficiencyPct: eff}
}

// MasterLimit sweeps node counts and returns the first cluster size at
// which the master's send time exceeds the slaves' database time under
// the per-node-optimal partitioning — Figure 11's crossover (~70 servers
// with the paper's constants). Returns 0 if no crossover occurs up to
// maxNodes.
func (s System) MasterLimit(totalElements, minKeys, maxKeys, maxNodes int) int {
	for n := 1; n <= maxNodes; n++ {
		_, p := s.OptimalKeys(totalElements, n, minKeys, maxKeys)
		if p.MasterMs >= p.SlaveMs {
			return n
		}
	}
	return 0
}

// PredictP2P evaluates the peer-to-peer variant the paper's
// introduction weighs against master-slave ("a master with a centralised
// logic is easier to implement but the capability of a single node might
// constrain the performance"): every node issues its own 1/n share of
// the requests, so the per-node send cost shrinks with the cluster while
// the database term is unchanged. Coordination overhead per node is
// charged as one extra message exchange with every peer.
func (s System) PredictP2P(totalElements, keys, nodes int) Prediction {
	p := s.Predict(totalElements, keys, nodes)
	if nodes < 1 {
		nodes = 1
	}
	// Each peer sends only its share, plus a round of coordination.
	p.MasterMs = float64(keys)/float64(nodes)*s.MsgSendMs +
		float64(nodes-1)*s.MsgSendMs
	p.FetchMs = float64(keys) / float64(nodes) * s.MsgRecvMs
	p.TotalMs = p.MasterMs
	p.Bottleneck = BottleneckMaster
	if p.SlaveMs > p.TotalMs {
		p.TotalMs = p.SlaveMs
		p.Bottleneck = BottleneckSlave
	}
	if p.FetchMs > p.TotalMs {
		p.TotalMs = p.FetchMs
		p.Bottleneck = BottleneckFetch
	}
	p.TotalMs *= 1 + s.GCFraction
	return p
}

// ArchitectureCrossover returns the first cluster size at which the
// peer-to-peer organisation beats master-slave at each one's optimal
// partition count — the design question the paper's introduction opens
// with. Returns 0 if master-slave holds up to maxNodes.
func (s System) ArchitectureCrossover(totalElements, minKeys, maxKeys, maxNodes int) int {
	for n := 1; n <= maxNodes; n++ {
		_, ms := s.OptimalKeys(totalElements, n, minKeys, maxKeys)
		// P2P optimum: search the same key grid against PredictP2P.
		best := math.Inf(1)
		for k := minKeys; k <= maxKeys; k = grow(k) {
			if p := s.PredictP2P(totalElements, k, n); p.TotalMs < best {
				best = p.TotalMs
			}
		}
		if best < ms.TotalMs*0.98 { // require a real win, not rounding
			return n
		}
	}
	return 0
}

// ReplicaSelectionLimit is the Section VII back-of-envelope: a master
// that must keep every node's pipeline full (parallelism·nodes requests
// in flight, refreshed every perRequestMs) runs out of cycles when
// parallelism·nodes·msgSend ≥ perRequestMs. Returns the largest node
// count that still fits (the paper rounds its example to ~32 nodes).
func (s System) ReplicaSelectionLimit(rowSize float64, parallelismPerNode int) int {
	per := s.DB.QueryTimeMs(rowSize) // latency of one request at depth P
	if s.MsgSendMs <= 0 {
		return math.MaxInt32
	}
	n := per / (float64(parallelismPerNode) * s.MsgSendMs)
	if n < 1 {
		return 0
	}
	return int(n)
}
