package core

// This file implements the paper's stated future work (Section IX):
// extending the database model to hierarchical storage architectures in
// the style of the Knights Landing CPU — several memory/storage tiers
// (MCDRAM, DDR, NVM, SSD, rotational disk) with very different service
// speeds, where a request's cost depends on which tier its data lives
// in.

// Tier is one level of the storage hierarchy.
type Tier struct {
	// Name is a human-readable label (e.g. "MCDRAM", "DDR4", "NVM").
	Name string
	// LatencyFactor multiplies the base DBModel service time when a
	// request is served from this tier. The fastest tier is typically
	// < 1 (the base fit blends tiers), deeper tiers are > 1.
	LatencyFactor float64
	// CapacityBytes is how much of the working set the tier can hold.
	CapacityBytes int64
}

// KNLTiers returns an illustrative Knights-Landing-style hierarchy: 16GB
// of fast on-package memory, 96GB of DRAM, then NVM and a rotational
// tier. Factors are indicative ratios, not measurements.
func KNLTiers() []Tier {
	return []Tier{
		{Name: "MCDRAM", LatencyFactor: 0.6, CapacityBytes: 16 << 30},
		{Name: "DDR4", LatencyFactor: 1.0, CapacityBytes: 96 << 30},
		{Name: "NVM", LatencyFactor: 4.0, CapacityBytes: 512 << 30},
		{Name: "HDD", LatencyFactor: 40.0, CapacityBytes: 4 << 40},
	}
}

// HierarchicalDB wraps a DBModel with a storage hierarchy: requests are
// served from the shallowest tiers first (waterfall placement of the
// working set), and the effective per-request cost is the
// capacity-weighted mix of tier costs.
type HierarchicalDB struct {
	Base  DBModel
	Tiers []Tier
	// WorkingSetBytes is the total bytes the query's working set spans.
	WorkingSetBytes int64
}

// TierShares returns the fraction of the working set resident in each
// tier under waterfall placement: fill the fastest tier, overflow to the
// next. Shares sum to 1 when capacity suffices; any overflow beyond the
// last tier is attributed to the last tier.
func (h HierarchicalDB) TierShares() []float64 {
	shares := make([]float64, len(h.Tiers))
	if h.WorkingSetBytes <= 0 || len(h.Tiers) == 0 {
		return shares
	}
	remaining := h.WorkingSetBytes
	for i, t := range h.Tiers {
		take := remaining
		if i < len(h.Tiers)-1 && take > t.CapacityBytes {
			take = t.CapacityBytes
		}
		shares[i] = float64(take) / float64(h.WorkingSetBytes)
		remaining -= take
		if remaining <= 0 {
			break
		}
	}
	return shares
}

// EffectiveFactor returns the capacity-weighted latency multiplier for
// the current working set.
func (h HierarchicalDB) EffectiveFactor() float64 {
	shares := h.TierShares()
	f := 0.0
	for i, s := range shares {
		f += s * h.Tiers[i].LatencyFactor
	}
	if f == 0 {
		return 1
	}
	return f
}

// PerRequestMs is the hierarchical Formula 8: the flat DBmodel scaled by
// the working set's tier mix.
func (h HierarchicalDB) PerRequestMs(rowSize float64) float64 {
	return h.Base.PerRequestMs(rowSize) * h.EffectiveFactor()
}

// WithHierarchy returns a copy of the system whose database cost is
// scaled for a working set of the given size on the given tiers — the
// tool the paper's future work asks for ("predict the time of serving
// requests out of each of these devices").
func (s System) WithHierarchy(tiers []Tier, workingSetBytes int64) System {
	h := HierarchicalDB{Base: s.DB, Tiers: tiers, WorkingSetBytes: workingSetBytes}
	factor := h.EffectiveFactor()
	out := s
	// Scale both branches of the piecewise fit; intercept and slope
	// scale together because the tier factor applies to the whole
	// service time.
	out.DB.LeftA *= factor
	out.DB.LeftB *= factor
	out.DB.RightA *= factor
	out.DB.RightB *= factor
	return out
}
