package core

import (
	"math"
	"testing"
)

func TestTierSharesWaterfall(t *testing.T) {
	h := HierarchicalDB{
		Tiers: []Tier{
			{Name: "fast", LatencyFactor: 0.5, CapacityBytes: 100},
			{Name: "slow", LatencyFactor: 10, CapacityBytes: 1000},
		},
	}
	// Working set fits in the fast tier.
	h.WorkingSetBytes = 80
	s := h.TierShares()
	if s[0] != 1.0 || s[1] != 0.0 {
		t.Fatalf("small working set shares %v want [1 0]", s)
	}
	// Working set spills.
	h.WorkingSetBytes = 400
	s = h.TierShares()
	if math.Abs(s[0]-0.25) > 1e-9 || math.Abs(s[1]-0.75) > 1e-9 {
		t.Fatalf("spilled shares %v want [0.25 0.75]", s)
	}
	// Overflow beyond the last tier still lands on the last tier.
	h.WorkingSetBytes = 10000
	s = h.TierShares()
	if math.Abs(s[0]+s[1]-1.0) > 1e-9 {
		t.Fatalf("shares %v must sum to 1", s)
	}
}

func TestTierSharesDegenerate(t *testing.T) {
	h := HierarchicalDB{}
	if got := h.TierShares(); len(got) != 0 {
		t.Fatal("no tiers must mean no shares")
	}
	h = HierarchicalDB{Tiers: KNLTiers()}
	for _, s := range h.TierShares() { // zero working set
		if s != 0 {
			t.Fatal("zero working set must have zero shares")
		}
	}
	if h.EffectiveFactor() != 1 {
		t.Fatal("degenerate factor must be 1")
	}
}

func TestEffectiveFactorGrowsWithWorkingSet(t *testing.T) {
	tiers := KNLTiers()
	small := HierarchicalDB{Tiers: tiers, WorkingSetBytes: 1 << 30}
	big := HierarchicalDB{Tiers: tiers, WorkingSetBytes: 1 << 41}
	if small.EffectiveFactor() >= big.EffectiveFactor() {
		t.Fatalf("factor must grow with working set: %.2f vs %.2f",
			small.EffectiveFactor(), big.EffectiveFactor())
	}
	// A working set inside MCDRAM must be faster than the flat model.
	if small.EffectiveFactor() >= 1 {
		t.Fatalf("in-MCDRAM factor %.2f must be < 1", small.EffectiveFactor())
	}
}

func TestHierarchicalPerRequest(t *testing.T) {
	base := PaperDBModel()
	h := HierarchicalDB{Base: base, Tiers: KNLTiers(), WorkingSetBytes: 1 << 30}
	flat := base.PerRequestMs(500)
	tiered := h.PerRequestMs(500)
	if math.Abs(tiered-flat*h.EffectiveFactor()) > 1e-9 {
		t.Fatalf("hierarchical cost %.4f inconsistent with factor", tiered)
	}
}

func TestWithHierarchyScalesSystem(t *testing.T) {
	s := PaperSystem()
	// A working set that spills deep into NVM slows predictions down.
	slow := s.WithHierarchy(KNLTiers(), 300<<30)
	pFlat := s.Predict(1_000_000, 4000, 8)
	pSlow := slow.Predict(1_000_000, 4000, 8)
	if pSlow.SlaveMs <= pFlat.SlaveMs {
		t.Fatalf("NVM-resident working set must be slower: %.1f vs %.1f",
			pSlow.SlaveMs, pFlat.SlaveMs)
	}
	// And an in-MCDRAM working set speeds them up.
	fast := s.WithHierarchy(KNLTiers(), 1<<30)
	pFast := fast.Predict(1_000_000, 4000, 8)
	if pFast.SlaveMs >= pFlat.SlaveMs {
		t.Fatalf("MCDRAM working set must be faster: %.1f vs %.1f",
			pFast.SlaveMs, pFlat.SlaveMs)
	}
}

func TestHierarchyShiftsOptimalKeys(t *testing.T) {
	// The optimizer still works against a tiered database; with a much
	// slower DB the master matters relatively less, so the optimum must
	// not collapse.
	s := PaperSystem().WithHierarchy(KNLTiers(), 2<<40)
	k, p := s.OptimalKeys(1_000_000, 8, 100, 100000)
	if k <= 0 || p.TotalMs <= 0 {
		t.Fatalf("optimizer failed on tiered system: k=%d %+v", k, p)
	}
}
