package core

import (
	"math"
	"math/rand"
	"testing"

	"scalekv/internal/balls"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

// Section II's worked phonebook examples, verbatim from the paper.
func TestFormula1PaperExamples(t *testing.T) {
	cases := []struct {
		keys, nodes int
		want        float64
		tol         float64
	}{
		{200, 10, 0.339, 0.002},            // countries: "about 34% more"
		{1000000, 10, 0.0048, 0.001},       // cities: "0.5%"
		{1000000000, 10, 0.00015, 0.00002}, // users: "0.015%"
		{500, 10, 0.215, 0.002},            // top-500 cities: "21% more load"
		{500, 20, 0.346, 0.002},            // doubling servers: "35%"
	}
	for _, c := range cases {
		got := ImbalanceRatio(c.keys, c.nodes)
		if !approx(got, c.want, c.tol) {
			t.Errorf("ImbalanceRatio(%d,%d) = %.4f want %.4f", c.keys, c.nodes, got, c.want)
		}
	}
}

func TestFormula1Degenerate(t *testing.T) {
	if ImbalanceRatio(0, 10) != 0 || ImbalanceRatio(10, 1) != 0 || ImbalanceRatio(10, 0) != 0 {
		t.Fatal("degenerate inputs must give 0")
	}
}

// The Figure 2/3 case: 100 keys on 16 nodes; the paper derives ~10.4
// keys on the most loaded node ("in our case it served 10").
func TestFormula5PaperCase(t *testing.T) {
	got := MaxKeysPerNode(100, 16)
	if !approx(got, 10.4, 0.1) {
		t.Fatalf("MaxKeysPerNode(100,16) = %.2f want ~10.4", got)
	}
	// Single node: all keys, no imbalance term (ln 1 = 0).
	if MaxKeysPerNode(5000, 1) != 5000 {
		t.Fatalf("single-node key_max must be all keys")
	}
}

// Formula 5 must agree with Monte-Carlo balls-into-bins within a few
// percent across the paper's operating range.
func TestFormula5MatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range []struct{ m, n int }{{100, 16}, {1000, 16}, {10000, 8}} {
		const trials = 2000
		sum := 0.0
		for i := 0; i < trials; i++ {
			sum += float64(balls.MaxLoad(c.m, c.n, rng))
		}
		mc := sum / trials
		an := MaxKeysPerNode(c.m, c.n)
		if mc < an*0.8 || mc > an*1.2 {
			t.Errorf("m=%d n=%d: MC %.2f vs Formula 5 %.2f", c.m, c.n, mc, an)
		}
	}
}

func TestFormula6Discontinuity(t *testing.T) {
	db := PaperDBModel()
	below := db.QueryTimeMs(1425)
	above := db.QueryTimeMs(1426)
	if above <= below {
		t.Fatalf("no upward jump at the column-index break: %.2f -> %.2f", below, above)
	}
	// Verbatim paper constants.
	if !approx(db.QueryTimeMs(1000), 1.163+0.0387*1000, 1e-9) {
		t.Error("left branch wrong")
	}
	if !approx(db.QueryTimeMs(5000), 0.773+0.0439*5000, 1e-9) {
		t.Error("right branch wrong")
	}
	// The Section VII example: ~11 ms for 250-element rows.
	if q := db.QueryTimeMs(250); !approx(q, 10.84, 0.05) {
		t.Errorf("QueryTimeMs(250) = %.2f want ~10.8 (paper: 11ms)", q)
	}
}

func TestFormula7SpeedupShape(t *testing.T) {
	db := PaperDBModel()
	small := db.Speedup(100)
	medium := db.Speedup(1000)
	large := db.Speedup(10000)
	if !(small > medium && medium > large) {
		t.Fatalf("speed-up must fall with row size: %.2f %.2f %.2f", small, medium, large)
	}
	if large < 1 {
		t.Fatal("speed-up below 1")
	}
	// Clamp for absurd sizes.
	if db.Speedup(1e9) != 1 {
		t.Fatal("speed-up must clamp to 1")
	}
	if db.Speedup(-5) != db.Speedup(1) {
		t.Fatal("non-positive row size must clamp to 1 element")
	}
}

// Section VII: "the whole query takes 8 seconds on a single node" at
// ~4000 rows of 1M elements. Our Formula 6/7 constants give ~6.6 s; the
// paper rounds up. Accept the band.
func TestSingleNodePaperEstimate(t *testing.T) {
	s := PaperSystem()
	p := s.Predict(1_000_000, 4000, 1)
	if p.TotalMs < 5500 || p.TotalMs > 9000 {
		t.Fatalf("single-node 4000-key query: %.0f ms, want 5.5-9 s band (paper ~8 s)", p.TotalMs)
	}
	if p.Bottleneck != BottleneckSlave {
		t.Fatalf("single node must be slave-bound, got %s", p.Bottleneck)
	}
}

func TestPredictBottleneckShifts(t *testing.T) {
	// With the slow master and many keys the master dominates — the
	// fine-grained pattern of Figure 4.
	slow := PaperSlowSystem()
	p := slow.Predict(1_000_000, 10000, 16)
	if p.Bottleneck != BottleneckMaster {
		t.Fatalf("slow master with 10k keys must be master-bound, got %s", p.Bottleneck)
	}
	// With the fast master the same workload becomes slave-bound —
	// Figure 5's recovery.
	fast := PaperSystem()
	p = fast.Predict(1_000_000, 10000, 16)
	if p.Bottleneck != BottleneckSlave {
		t.Fatalf("fast master with 10k keys must be slave-bound, got %s", p.Bottleneck)
	}
}

func TestPredictMasterTimeMatchesSectionVB(t *testing.T) {
	// 10k messages: 1.5 s slow, 192 ms fast (paper's measured numbers).
	slow := PaperSlowSystem().Predict(1_000_000, 10000, 16)
	if !approx(slow.MasterMs, 1500, 1) {
		t.Errorf("slow master 10k msgs = %.0f ms want 1500", slow.MasterMs)
	}
	fast := PaperSystem().Predict(1_000_000, 10000, 16)
	if !approx(fast.MasterMs, 190, 1) {
		t.Errorf("fast master 10k msgs = %.0f ms want 190", fast.MasterMs)
	}
}

func TestPredictMonotoneInNodes(t *testing.T) {
	s := PaperSystem()
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 4, 8, 16} {
		p := s.Predict(1_000_000, 10000, n)
		if p.TotalMs > prev {
			t.Fatalf("total time rose when adding nodes at n=%d", n)
		}
		prev = p.TotalMs
	}
}

func TestPredictDegenerateInputs(t *testing.T) {
	s := PaperSystem()
	p := s.Predict(1000, 0, 0) // clamped to 1 key, 1 node
	if p.Keys != 1 || p.Nodes != 1 {
		t.Fatalf("clamping failed: %+v", p)
	}
	if p.TotalMs <= 0 {
		t.Fatal("prediction must be positive")
	}
}

func TestGCInflation(t *testing.T) {
	s := PaperSystem()
	base := s.Predict(1_000_000, 100, 16).TotalMs
	s.GCFraction = 0.25
	inflated := s.Predict(1_000_000, 100, 16).TotalMs
	if !approx(inflated, base*1.25, base*0.001) {
		t.Fatalf("GC inflation wrong: %.1f vs %.1f*1.25", inflated, base)
	}
}

// Figure 9's qualitative content: the optimizer trades database
// efficiency for balance, so optimal keys grow with the node count.
func TestOptimalKeysGrowWithNodes(t *testing.T) {
	s := PaperSystem()
	prevKeys := 0
	prevTime := math.Inf(1)
	for _, n := range []int{1, 2, 4, 8, 16} {
		k, p := s.OptimalKeys(1_000_000, n, 100, 100000)
		if k < prevKeys {
			t.Fatalf("optimal keys fell from %d to %d at n=%d", prevKeys, k, n)
		}
		if p.TotalMs > prevTime {
			t.Fatalf("optimal time rose at n=%d", n)
		}
		prevKeys, prevTime = k, p.TotalMs
	}
	// Single-node optimum lands in the paper's few-thousand-rows range
	// (paper: ~3300; our refit of the same constants gives a flat
	// optimum between ~3000 and ~9000).
	k1, _ := s.OptimalKeys(1_000_000, 1, 100, 100000)
	if k1 < 2000 || k1 > 10000 {
		t.Fatalf("single-node optimal keys = %d, want thousands", k1)
	}
}

func TestOptimalKeysIsActuallyOptimal(t *testing.T) {
	s := PaperSystem()
	k, best := s.OptimalKeys(1_000_000, 8, 100, 50000)
	for _, probe := range []int{k / 2, k * 2, k - 7, k + 7, 100, 50000} {
		if probe < 100 || probe > 50000 {
			continue
		}
		if p := s.Predict(1_000_000, probe, 8); p.TotalMs < best.TotalMs*0.999 {
			t.Fatalf("found better keys=%d (%.2fms) than optimizer's %d (%.2fms)",
				probe, p.TotalMs, k, best.TotalMs)
		}
	}
}

// Figure 10: at 16 nodes the paper reports ~10% total loss versus ideal
// scaling at optimal settings, part imbalance, part sacrificed database
// efficiency.
func TestLossAtOptimum(t *testing.T) {
	s := PaperSystem()
	loss := s.LossAtOptimum(1_000_000, 16, 100, 100000)
	if loss.TotalPct < 2 || loss.TotalPct > 30 {
		t.Fatalf("loss at 16 nodes = %.1f%%, want single-digit-to-tens band (paper ~10%%)", loss.TotalPct)
	}
	if loss.ImbalancePct < 0 || loss.EfficiencyPct < 0 {
		t.Fatalf("negative loss components: %+v", loss)
	}
	if loss.ImbalancePct+loss.EfficiencyPct > loss.TotalPct*1.01+0.1 {
		t.Fatalf("components exceed total: %+v", loss)
	}
	// Loss grows with the cluster.
	small := s.LossAtOptimum(1_000_000, 2, 100, 100000)
	if small.TotalPct > loss.TotalPct {
		t.Fatalf("loss at 2 nodes (%.1f%%) above loss at 16 (%.1f%%)", small.TotalPct, loss.TotalPct)
	}
}

// Section VII: the replica-selection master saturates past ~32 nodes.
func TestReplicaSelectionLimitPaperExample(t *testing.T) {
	s := PaperSystem()
	limit := s.ReplicaSelectionLimit(250, 16)
	if limit < 28 || limit > 42 {
		t.Fatalf("replica-selection limit = %d nodes, paper estimates ~32-36", limit)
	}
}

// Figure 11: with random distribution the master outlasts the replica
// selection case and crosses over around 70 servers.
func TestMasterLimitPaperCrossover(t *testing.T) {
	s := PaperSystem()
	limit := s.MasterLimit(1_000_000, 100, 100000, 128)
	if limit < 50 || limit > 95 {
		t.Fatalf("random-distribution master limit = %d nodes, paper shows ~70", limit)
	}
	// The slow master crosses over much earlier.
	slowLimit := PaperSlowSystem().MasterLimit(1_000_000, 100, 100000, 128)
	if slowLimit == 0 || slowLimit >= limit {
		t.Fatalf("slow master limit %d must be below fast limit %d", slowLimit, limit)
	}
}

func TestPredictP2PRemovesMasterBottleneck(t *testing.T) {
	// The slow master chokes at 10k keys on 16 nodes; distributing the
	// send work across peers must recover it.
	s := PaperSlowSystem()
	ms := s.Predict(1_000_000, 10000, 16)
	p2p := s.PredictP2P(1_000_000, 10000, 16)
	if ms.Bottleneck != BottleneckMaster {
		t.Fatalf("master-slave should be master-bound, got %s", ms.Bottleneck)
	}
	if p2p.TotalMs >= ms.TotalMs {
		t.Fatalf("p2p %.0fms not below master-slave %.0fms", p2p.TotalMs, ms.TotalMs)
	}
	if p2p.Bottleneck == BottleneckMaster {
		t.Fatal("p2p still master-bound at 16 nodes")
	}
}

func TestPredictP2PCoordinationCost(t *testing.T) {
	// On a single node p2p degenerates to master-slave (no peers to
	// coordinate with).
	s := PaperSystem()
	ms := s.Predict(1_000_000, 4000, 1)
	p2p := s.PredictP2P(1_000_000, 4000, 1)
	if !approx(p2p.TotalMs, ms.TotalMs, ms.TotalMs*0.001) {
		t.Fatalf("single-node p2p %.1f != master-slave %.1f", p2p.TotalMs, ms.TotalMs)
	}
}

func TestArchitectureCrossover(t *testing.T) {
	// With the fast master, master-slave holds until the Figure 11
	// regime; the crossover must land in the same band as MasterLimit.
	s := PaperSystem()
	cross := s.ArchitectureCrossover(1_000_000, 100, 100_000, 128)
	limit := s.MasterLimit(1_000_000, 100, 100_000, 128)
	if cross == 0 {
		t.Fatal("no crossover found up to 128 nodes")
	}
	if cross > limit+16 {
		t.Fatalf("p2p crossover %d far beyond master limit %d", cross, limit)
	}
	// The slow master should surrender to p2p much earlier.
	slowCross := PaperSlowSystem().ArchitectureCrossover(1_000_000, 100, 100_000, 128)
	if slowCross == 0 || slowCross >= cross {
		t.Fatalf("slow-master crossover %d not below fast-master %d", slowCross, cross)
	}
}

func TestReplicaSelectionLimitEdge(t *testing.T) {
	s := PaperSystem()
	s.MsgSendMs = 0
	if s.ReplicaSelectionLimit(250, 16) != math.MaxInt32 {
		t.Fatal("zero message cost must mean no limit")
	}
	s = PaperSystem()
	s.MsgSendMs = 1e6 // absurdly slow master
	if s.ReplicaSelectionLimit(250, 16) != 0 {
		t.Fatal("absurdly slow master must support zero nodes")
	}
}

func TestPredictionString(t *testing.T) {
	p := PaperSystem().Predict(1_000_000, 1000, 4)
	if s := p.String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
}
