// Package balls provides the balls-into-bins machinery behind the
// paper's workload-imbalance analysis: Monte-Carlo estimation of the
// maximum bin load (Figure 3) and the alternative placement policies
// discussed in Section VIII — single choice (plain DHT hashing), the
// power of two random choices, and Kinesis-style "r of k" placement.
//
// The closed-form expectations (Formulas 1 and 5) live in internal/core;
// this package supplies the empirical side the paper validates them
// against.
package balls

import (
	"math/rand"

	"scalekv/internal/stats"
)

// MaxLoad throws m balls into n bins uniformly at random and returns the
// load of the most loaded bin — one Figure 3 trial.
func MaxLoad(m, n int, rng *rand.Rand) int {
	if n <= 0 || m <= 0 {
		return 0
	}
	bins := make([]int, n)
	for i := 0; i < m; i++ {
		bins[rng.Intn(n)]++
	}
	max := 0
	for _, b := range bins {
		if b > max {
			max = b
		}
	}
	return max
}

// MaxLoadDistribution runs `trials` single-choice experiments and
// returns a histogram of the max load — the probability density the
// paper brute-forces for Figure 3 (100 keys over 16 nodes).
func MaxLoadDistribution(m, n, trials int, rng *rand.Rand) *stats.Histogram {
	lo := float64(m) / float64(n)
	hi := lo * 4
	if hi < lo+10 {
		hi = lo + 10
	}
	h := stats.NewHistogram(lo, hi, int(hi-lo))
	for i := 0; i < trials; i++ {
		h.Add(float64(MaxLoad(m, n, rng)))
	}
	return h
}

// ProbMoreUnbalancedThan estimates P[max load >= threshold] over trials
// experiments; the paper uses it to show the observed 10-of-100-keys
// case was not unlucky ("in 60% of the cases we would have a more
// unbalanced scenario").
func ProbMoreUnbalancedThan(m, n, threshold, trials int, rng *rand.Rand) float64 {
	hits := 0
	for i := 0; i < trials; i++ {
		if MaxLoad(m, n, rng) >= threshold {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// TwoChoiceMaxLoad throws m balls, picking the lesser-loaded of two
// random bins each time — Mitzenmacher's power of two choices, whose max
// load is m/n + O(log log n) instead of m/n + O(sqrt(m log n / n)).
func TwoChoiceMaxLoad(m, n int, rng *rand.Rand) int {
	if n <= 0 || m <= 0 {
		return 0
	}
	bins := make([]int, n)
	for i := 0; i < m; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if bins[b] < bins[a] {
			a = b
		}
		bins[a]++
	}
	max := 0
	for _, b := range bins {
		if b > max {
			max = b
		}
	}
	return max
}

// KinesisPlacement models Microsoft Kinesis' "r of k" scheme: each ball
// hashes to k candidate bins and is stored in the r least loaded of
// them. Returns per-bin loads. The write balance improves with k, but —
// as the paper points out — a reader that cannot know which replicas
// were chosen must query all k candidates, multiplying read work.
type KinesisPlacement struct {
	K int // candidate bins per ball
	R int // replicas actually written
}

// Place distributes m balls over n bins and returns the bin loads and
// the read amplification factor (k/r): the expected extra queries a
// reader issues relative to storing r fixed replicas.
func (p KinesisPlacement) Place(m, n int, rng *rand.Rand) (loads []int, readAmplification float64) {
	if p.K < 1 {
		p.K = 1
	}
	if p.R < 1 {
		p.R = 1
	}
	if p.R > p.K {
		p.R = p.K
	}
	loads = make([]int, n)
	if n <= 0 || m <= 0 {
		return loads, 1
	}
	cand := make([]int, 0, p.K)
	for i := 0; i < m; i++ {
		cand = cand[:0]
		// k distinct candidates.
		for len(cand) < p.K && len(cand) < n {
			c := rng.Intn(n)
			dup := false
			for _, e := range cand {
				if e == c {
					dup = true
					break
				}
			}
			if !dup {
				cand = append(cand, c)
			}
		}
		// Write to the r least loaded candidates (selection by simple
		// partial sort; k is tiny).
		for w := 0; w < p.R && w < len(cand); w++ {
			best := w
			for j := w + 1; j < len(cand); j++ {
				if loads[cand[j]] < loads[cand[best]] {
					best = j
				}
			}
			cand[w], cand[best] = cand[best], cand[w]
			loads[cand[w]]++
		}
	}
	return loads, float64(p.K) / float64(p.R)
}

// MaxOf returns the maximum of a load vector.
func MaxOf(loads []int) int {
	max := 0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}
