package balls

import (
	"math"
	"math/rand"
	"testing"
)

func TestMaxLoadBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		m, n := 100, 16
		got := MaxLoad(m, n, rng)
		if got < (m+n-1)/n {
			t.Fatalf("max load %d below ceiling(m/n)=%d", got, (m+n-1)/n)
		}
		if got > m {
			t.Fatalf("max load %d above m", got)
		}
	}
}

func TestMaxLoadDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if MaxLoad(0, 10, rng) != 0 || MaxLoad(10, 0, rng) != 0 {
		t.Fatal("degenerate inputs must yield 0")
	}
	if MaxLoad(50, 1, rng) != 50 {
		t.Fatal("single bin must hold every ball")
	}
}

// The Figure 3 experiment: 100 keys over 16 nodes. The paper observed a
// max load of 10 and notes Formula 1 predicts ~10.4; the distribution
// mode should be near there and P[max >= 10] should be around 60%.
func TestFigure3Distribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := MaxLoadDistribution(100, 16, 20000, rng)
	mode := h.Mode()
	if mode < 9 || mode > 12 {
		t.Fatalf("mode %.1f, want near 10 (paper's observation)", mode)
	}
	// "More unbalanced" than the observed max of 10 means max >= 11.
	p := ProbMoreUnbalancedThan(100, 16, 11, 20000, rng)
	if p < 0.40 || p > 0.80 {
		t.Fatalf("P[max>=11] = %.2f, paper reports ~0.60", p)
	}
}

// Expected max load should track Formula 5: m/n + sqrt(m*ln(n)/n).
func TestMaxLoadMatchesFormula5Scale(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct{ m, n int }{
		{100, 16}, {1000, 16}, {10000, 16}, {1000, 8}, {10000, 4},
	}
	for _, c := range cases {
		const trials = 3000
		sum := 0
		for i := 0; i < trials; i++ {
			sum += MaxLoad(c.m, c.n, rng)
		}
		got := float64(sum) / trials
		want := float64(c.m)/float64(c.n) +
			math.Sqrt(float64(c.m)*math.Log(float64(c.n))/float64(c.n))
		if got < want*0.75 || got > want*1.25 {
			t.Errorf("m=%d n=%d: empirical mean max %.2f vs Formula 5 %.2f (>25%% off)",
				c.m, c.n, got, want)
		}
	}
}

// Two choices must beat one choice decisively (Mitzenmacher).
func TestTwoChoiceBeatsSingleChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const m, n, trials = 10000, 16, 300
	var single, double float64
	for i := 0; i < trials; i++ {
		single += float64(MaxLoad(m, n, rng))
		double += float64(TwoChoiceMaxLoad(m, n, rng))
	}
	single /= trials
	double /= trials
	mean := float64(m) / float64(n)
	if double-mean > (single-mean)/2 {
		t.Fatalf("two-choice overload %.1f not clearly below single-choice %.1f",
			double-mean, single-mean)
	}
}

func TestTwoChoiceDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if TwoChoiceMaxLoad(0, 5, rng) != 0 || TwoChoiceMaxLoad(5, 0, rng) != 0 {
		t.Fatal("degenerate inputs must yield 0")
	}
}

func TestKinesisPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := KinesisPlacement{K: 4, R: 2}
	loads, amp := p.Place(5000, 16, rng)
	total := 0
	for _, l := range loads {
		total += l
	}
	if total != 5000*2 {
		t.Fatalf("total replicas %d want %d", total, 10000)
	}
	if amp != 2.0 {
		t.Fatalf("read amplification %.1f want 2.0 (k=4,r=2)", amp)
	}
	// Balance should be better than single-choice with the same number
	// of replica writes.
	rngB := rand.New(rand.NewSource(3))
	singleMax := MaxLoad(10000, 16, rngB)
	if MaxOf(loads) > singleMax {
		t.Fatalf("kinesis max %d worse than single choice %d", MaxOf(loads), singleMax)
	}
}

func TestKinesisClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := KinesisPlacement{K: 0, R: 9} // r > k and k < 1: both clamp
	loads, amp := p.Place(100, 4, rng)
	if amp != 1.0 {
		t.Fatalf("amplification %.1f want 1.0 after clamping", amp)
	}
	total := 0
	for _, l := range loads {
		total += l
	}
	if total != 100 {
		t.Fatalf("total %d want 100", total)
	}
	empty, _ := p.Place(0, 0, rng)
	if len(empty) != 0 {
		t.Fatal("zero bins must return empty loads")
	}
}

func BenchmarkMaxLoad100x16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		MaxLoad(100, 16, rng)
	}
}
