package row

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func ck(i int) []byte { return []byte(fmt.Sprintf("ck%04d", i)) }

func mkPartition(n int) *Partition {
	p := &Partition{Key: "pk"}
	for i := 0; i < n; i++ {
		p.Cells = append(p.Cells, Cell{CK: ck(i), Value: []byte{byte(i)}})
	}
	return p
}

func TestFind(t *testing.T) {
	p := mkPartition(100)
	for i := 0; i < 100; i++ {
		if got := p.Find(ck(i)); got != i {
			t.Fatalf("Find(%d) = %d", i, got)
		}
	}
	if p.Find([]byte("absent")) != -1 {
		t.Fatal("found absent ck")
	}
	empty := &Partition{}
	if empty.Find(ck(0)) != -1 {
		t.Fatal("found in empty partition")
	}
}

func TestSliceRange(t *testing.T) {
	p := mkPartition(10)
	got := p.SliceRange(ck(3), ck(7))
	if len(got) != 4 {
		t.Fatalf("got %d cells want 4", len(got))
	}
	if !bytes.Equal(got[0].CK, ck(3)) || !bytes.Equal(got[3].CK, ck(6)) {
		t.Fatalf("range bounds wrong: %q..%q", got[0].CK, got[3].CK)
	}
	if all := p.SliceRange(nil, nil); len(all) != 10 {
		t.Fatalf("full range %d want 10", len(all))
	}
	if head := p.SliceRange(nil, ck(2)); len(head) != 2 {
		t.Fatalf("head range %d want 2", len(head))
	}
	if tail := p.SliceRange(ck(8), nil); len(tail) != 2 {
		t.Fatalf("tail range %d want 2", len(tail))
	}
	if none := p.SliceRange(ck(5), ck(5)); len(none) != 0 {
		t.Fatalf("empty range returned %d cells", len(none))
	}
}

func TestSize(t *testing.T) {
	p := &Partition{Key: "ab", Cells: []Cell{{CK: []byte("c"), Value: []byte("dd")}}}
	if p.Size() != 2+1+2 {
		t.Fatalf("size %d want 5", p.Size())
	}
	if p.Cells[0].Size() != 3 {
		t.Fatalf("cell size %d want 3", p.Cells[0].Size())
	}
}

func TestMergeDisjoint(t *testing.T) {
	a := []Cell{{CK: ck(0)}, {CK: ck(2)}}
	b := []Cell{{CK: ck(1)}, {CK: ck(3)}}
	got := Merge(a, b)
	if len(got) != 4 {
		t.Fatalf("merged %d cells want 4", len(got))
	}
	for i := 0; i < 4; i++ {
		if !bytes.Equal(got[i].CK, ck(i)) {
			t.Fatalf("position %d: %q", i, got[i].CK)
		}
	}
}

func TestMergeNewestWins(t *testing.T) {
	older := []Cell{{CK: ck(1), Value: []byte("old")}}
	newer := []Cell{{CK: ck(1), Value: []byte("new")}}
	got := Merge(older, newer)
	if len(got) != 1 || string(got[0].Value) != "new" {
		t.Fatalf("got %v, want single cell with value new", got)
	}
	// Reversed argument order flips the winner.
	got = Merge(newer, older)
	if len(got) != 1 || string(got[0].Value) != "old" {
		t.Fatalf("got %v, want single cell with value old", got)
	}
}

func TestMergeThreeWay(t *testing.T) {
	s0 := []Cell{{CK: ck(0), Value: []byte("s0")}, {CK: ck(5), Value: []byte("s0")}}
	s1 := []Cell{{CK: ck(0), Value: []byte("s1")}, {CK: ck(3), Value: []byte("s1")}}
	s2 := []Cell{{CK: ck(5), Value: []byte("s2")}}
	got := Merge(s0, s1, s2)
	want := map[string]string{"ck0000": "s1", "ck0003": "s1", "ck0005": "s2"}
	if len(got) != len(want) {
		t.Fatalf("merged %d cells want %d", len(got), len(want))
	}
	for _, c := range got {
		if want[string(c.CK)] != string(c.Value) {
			t.Fatalf("cell %q has value %q want %q", c.CK, c.Value, want[string(c.CK)])
		}
	}
}

func TestMergeEdgeCases(t *testing.T) {
	if got := Merge(); got != nil {
		t.Fatal("no sources must merge to nil")
	}
	one := []Cell{{CK: ck(1)}}
	if got := Merge(one); len(got) != 1 {
		t.Fatal("single source must pass through")
	}
	if got := Merge(nil, one, nil); len(got) != 1 {
		t.Fatalf("nil sources must be skipped, got %d", len(got))
	}
}

// Property: Merge output is sorted, duplicate-free, and contains exactly
// the union of input keys.
func TestMergeProperty(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		mk := func(raw []uint8, tag string) []Cell {
			seen := map[uint8]bool{}
			var keys []int
			for _, k := range raw {
				if !seen[k] {
					seen[k] = true
					keys = append(keys, int(k))
				}
			}
			sort.Ints(keys)
			cells := make([]Cell, len(keys))
			for i, k := range keys {
				cells[i] = Cell{CK: ck(k), Value: []byte(tag)}
			}
			return cells
		}
		a, b := mk(aRaw, "a"), mk(bRaw, "b")
		got := Merge(a, b)
		union := map[string]bool{}
		for _, c := range a {
			union[string(c.CK)] = true
		}
		inB := map[string]bool{}
		for _, c := range b {
			union[string(c.CK)] = true
			inB[string(c.CK)] = true
		}
		if len(got) != len(union) {
			return false
		}
		for i, c := range got {
			if i > 0 && bytes.Compare(got[i-1].CK, c.CK) >= 0 {
				return false // not strictly ascending
			}
			wantVal := "a"
			if inB[string(c.CK)] {
				wantVal = "b" // newer source wins
			}
			if string(c.Value) != wantVal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
