// Package row defines the cell and partition types shared by the
// memtable, SSTable, storage engine and cluster read/write paths.
//
// The data model is Cassandra's wide-column layout as the paper describes
// it: "a partitioned distributed HashMap where each entry contains another
// SortedMap". A Partition is one entry of the outer hash map (placed on a
// node by its key's murmur token); its Cells are the inner sorted map,
// ordered by clustering key.
//
// Every cell carries a Version — a (Seq, Node) hybrid counter stamped by
// the storage engine that accepted the write — and a Tombstone flag.
// Wherever two copies of a cell meet (a memtable overwrite, a read
// merging memtables with SSTables, a compaction, a replica receiving
// both a streamed copy and a forwarded write during a rebalance), the
// higher version wins deterministically: last-write-wins is decided by
// the version, never by arrival order.
package row

import "bytes"

// Version orders writes to the same (partition key, clustering key)
// address. Seq is a per-engine monotonic counter advanced by every
// accepted write and pulled forward by any higher incoming version
// (hybrid-logical-clock style), Node breaks ties between engines. The
// zero Version is the oldest possible: cells from pre-versioning data
// (v1 SSTables, legacy WAL segments) carry it and lose to any stamped
// write.
type Version struct {
	Seq  uint64
	Node uint16
}

// Compare returns -1, 0 or +1 as v orders before, equal to or after o.
func (v Version) Compare(o Version) int {
	if v.Seq != o.Seq {
		if v.Seq < o.Seq {
			return -1
		}
		return 1
	}
	if v.Node != o.Node {
		if v.Node < o.Node {
			return -1
		}
		return 1
	}
	return 0
}

// Less reports whether v orders strictly before o.
func (v Version) Less(o Version) bool { return v.Compare(o) < 0 }

// IsZero reports whether v is the zero (legacy, oldest) version.
func (v Version) IsZero() bool { return v.Seq == 0 && v.Node == 0 }

// Cell is one clustering-key/value pair inside a partition, stamped
// with the version of the write that produced it. A tombstone cell
// records a delete: it masks every older version of the address and
// carries no value.
type Cell struct {
	CK        []byte
	Value     []byte
	Ver       Version
	Tombstone bool
}

// Size returns the payload size of the cell in bytes.
func (c Cell) Size() int { return len(c.CK) + len(c.Value) }

// Entry is one write addressed to a partition: a cell plus the partition
// key it lands on. It is the unit of the batched write path — the wire
// batch messages, the engine's group commit and the client batcher all
// move slices of entries. A zero Ver means "not yet stamped": the
// accepting engine assigns one. A non-zero Ver is preserved — that is
// how forwarded and streamed copies keep the version of the original
// write, so every replica's merge picks the same winner.
type Entry struct {
	PK        string
	CK        []byte
	Value     []byte
	Ver       Version
	Tombstone bool
}

// Size returns the payload size of the entry in bytes, partition key
// included.
func (e Entry) Size() int { return len(e.PK) + len(e.CK) + len(e.Value) }

// Partition is a partition key together with its cells sorted by
// clustering key.
type Partition struct {
	Key   string
	Cells []Cell
}

// Size returns the total payload size of the partition in bytes.
func (p *Partition) Size() int {
	s := len(p.Key)
	for _, c := range p.Cells {
		s += c.Size()
	}
	return s
}

// Find returns the index of the cell with the given clustering key, or
// -1. The cells must be sorted by clustering key.
func (p *Partition) Find(ck []byte) int {
	lo, hi := 0, len(p.Cells)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(p.Cells[mid].CK, ck) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.Cells) && bytes.Equal(p.Cells[lo].CK, ck) {
		return lo
	}
	return -1
}

// SliceRange returns the sub-slice of cells with from <= CK < to.
// A nil `to` means "until the end"; a nil `from` means "from the start".
func (p *Partition) SliceRange(from, to []byte) []Cell {
	lo := 0
	if from != nil {
		lo = lowerBound(p.Cells, from)
	}
	hi := len(p.Cells)
	if to != nil {
		hi = lowerBound(p.Cells, to)
	}
	if lo > hi {
		return nil
	}
	return p.Cells[lo:hi]
}

func lowerBound(cells []Cell, ck []byte) int {
	lo, hi := 0, len(cells)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(cells[mid].CK, ck) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Merge combines cells from multiple sorted sources into one sorted run,
// resolving clustering-key collisions by version: the highest version
// wins, and on an exact version tie the later source wins (sources are
// passed oldest to newest — SSTables before memtables — so pre-versioning
// cells, which all carry the zero version, keep their historical
// newest-table-wins semantics). Tombstones take part in the merge like
// any other cell and appear in the output; callers that serve reads
// filter them (DropTombstones), while compaction and range streaming
// keep them so a delete keeps masking older copies elsewhere.
func Merge(sources ...[]Cell) []Cell {
	switch len(sources) {
	case 0:
		return nil
	case 1:
		return sources[0]
	}
	total := 0
	for _, s := range sources {
		total += len(s)
	}
	out := make([]Cell, 0, total)
	idx := make([]int, len(sources))
	for {
		// Find the smallest head key across all sources.
		var minKey []byte
		found := false
		for si := range sources {
			if idx[si] >= len(sources[si]) {
				continue
			}
			k := sources[si][idx[si]].CK
			if !found || bytes.Compare(k, minKey) < 0 {
				minKey, found = k, true
			}
		}
		if !found {
			return out
		}
		// The highest version holding minKey wins; every source holding
		// it advances so shadowed duplicates are dropped. >= with
		// ascending si: an exact version tie goes to the newest source.
		var winner Cell
		first := true
		for si := range sources {
			if idx[si] < len(sources[si]) && bytes.Equal(sources[si][idx[si]].CK, minKey) {
				c := sources[si][idx[si]]
				if first || c.Ver.Compare(winner.Ver) >= 0 {
					winner, first = c, false
				}
				idx[si]++
			}
		}
		out = append(out, winner)
	}
}

// DropTombstones filters deleted cells out of a merged run — the last
// step of serving a read. It returns the input slice unchanged when no
// tombstone is present (the common case allocates nothing).
func DropTombstones(cells []Cell) []Cell {
	i := 0
	for i < len(cells) && !cells[i].Tombstone {
		i++
	}
	if i == len(cells) {
		return cells
	}
	out := make([]Cell, i, len(cells)-1)
	copy(out, cells[:i])
	for _, c := range cells[i+1:] {
		if !c.Tombstone {
			out = append(out, c)
		}
	}
	return out
}
