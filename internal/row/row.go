// Package row defines the cell and partition types shared by the
// memtable, SSTable, storage engine and cluster read/write paths.
//
// The data model is Cassandra's wide-column layout as the paper describes
// it: "a partitioned distributed HashMap where each entry contains another
// SortedMap". A Partition is one entry of the outer hash map (placed on a
// node by its key's murmur token); its Cells are the inner sorted map,
// ordered by clustering key.
package row

import "bytes"

// Cell is one clustering-key/value pair inside a partition.
type Cell struct {
	CK    []byte
	Value []byte
}

// Size returns the payload size of the cell in bytes.
func (c Cell) Size() int { return len(c.CK) + len(c.Value) }

// Entry is one write addressed to a partition: a cell plus the partition
// key it lands on. It is the unit of the batched write path — the wire
// batch messages, the engine's group commit and the client batcher all
// move slices of entries.
type Entry struct {
	PK    string
	CK    []byte
	Value []byte
}

// Size returns the payload size of the entry in bytes, partition key
// included.
func (e Entry) Size() int { return len(e.PK) + len(e.CK) + len(e.Value) }

// Partition is a partition key together with its cells sorted by
// clustering key.
type Partition struct {
	Key   string
	Cells []Cell
}

// Size returns the total payload size of the partition in bytes.
func (p *Partition) Size() int {
	s := len(p.Key)
	for _, c := range p.Cells {
		s += c.Size()
	}
	return s
}

// Find returns the index of the cell with the given clustering key, or
// -1. The cells must be sorted by clustering key.
func (p *Partition) Find(ck []byte) int {
	lo, hi := 0, len(p.Cells)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(p.Cells[mid].CK, ck) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.Cells) && bytes.Equal(p.Cells[lo].CK, ck) {
		return lo
	}
	return -1
}

// SliceRange returns the sub-slice of cells with from <= CK < to.
// A nil `to` means "until the end"; a nil `from` means "from the start".
func (p *Partition) SliceRange(from, to []byte) []Cell {
	lo := 0
	if from != nil {
		lo = lowerBound(p.Cells, from)
	}
	hi := len(p.Cells)
	if to != nil {
		hi = lowerBound(p.Cells, to)
	}
	if lo > hi {
		return nil
	}
	return p.Cells[lo:hi]
}

func lowerBound(cells []Cell, ck []byte) int {
	lo, hi := 0, len(cells)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(cells[mid].CK, ck) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Merge combines cells from multiple sorted sources into one sorted run.
// Later sources win on clustering-key collisions (the storage engine
// passes sources from oldest SSTable to newest memtable).
func Merge(sources ...[]Cell) []Cell {
	switch len(sources) {
	case 0:
		return nil
	case 1:
		return sources[0]
	}
	total := 0
	for _, s := range sources {
		total += len(s)
	}
	out := make([]Cell, 0, total)
	idx := make([]int, len(sources))
	for {
		// Find the smallest head key across all sources.
		var minKey []byte
		found := false
		for si := range sources {
			if idx[si] >= len(sources[si]) {
				continue
			}
			k := sources[si][idx[si]].CK
			if !found || bytes.Compare(k, minKey) < 0 {
				minKey, found = k, true
			}
		}
		if !found {
			return out
		}
		// The newest source holding minKey wins; every source holding it
		// advances so older duplicates are dropped.
		var winner Cell
		for si := range sources {
			if idx[si] < len(sources[si]) && bytes.Equal(sources[si][idx[si]].CK, minKey) {
				winner = sources[si][idx[si]] // ascending si: last assignment is newest
				idx[si]++
			}
		}
		out = append(out, winner)
	}
}
