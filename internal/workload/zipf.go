package workload

import (
	"math"
	"math/rand"
)

// KeyChooser draws key indexes in [0, n) from some distribution. Each
// worker goroutine owns its chooser (they are not safe for concurrent
// use); a fixed seed makes the draw sequence fully deterministic.
type KeyChooser interface {
	Next() int64
}

// NewChooser builds the chooser a mix calls for: scrambled Zipfian
// with the mix's theta, or uniform.
func NewChooser(m Mix, n int64, seed int64) KeyChooser {
	if m.Zipfian {
		return NewScrambledZipf(n, m.Theta, seed)
	}
	return NewUniform(n, seed)
}

// uniform draws every key with equal probability.
type uniform struct {
	n int64
	r *rand.Rand
}

// NewUniform returns a uniform chooser over [0, n).
func NewUniform(n int64, seed int64) KeyChooser {
	return &uniform{n: n, r: rand.New(rand.NewSource(seed))}
}

func (u *uniform) Next() int64 { return u.r.Int63n(u.n) }

// Zipf draws ranks in [0, n) Zipf-distributed with parameter theta:
// rank 0 is the most popular, P(rank=i) ∝ 1/(i+1)^theta. It is the
// incremental algorithm of Gray et al. ("Quickly generating
// billion-record synthetic databases", SIGMOD '94) that YCSB's
// ZipfianGenerator uses: constant-time draws after an O(n) zeta
// precomputation, exact for 0 < theta < 1.
type Zipf struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // 0.5^theta, hoisted out of Next
	r     *rand.Rand
}

// NewZipf returns a Zipfian rank chooser over [0, n) with skew theta
// (0 < theta < 1; YCSB's default 0.99 puts roughly half the draws on
// the top 1% of a 10k keyspace). Panics on an out-of-range theta —
// MixByName validates user input before it gets here.
func NewZipf(n int64, theta float64, seed int64) *Zipf {
	if n < 1 || theta <= 0 || theta >= 1 {
		panic("workload: NewZipf needs n >= 1 and 0 < theta < 1")
	}
	zetan := zeta(n, theta)
	return &Zipf{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/zetan),
		half:  math.Pow(0.5, theta),
		r:     rand.New(rand.NewSource(seed)),
	}
}

// Next draws the next rank. Rank 0 is the hottest key.
func (z *Zipf) Next() int64 {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	rank := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n { // float round-up at the tail
		rank = z.n - 1
	}
	return rank
}

// zeta is the truncated zeta sum Σ_{i=1..n} 1/i^theta.
func zeta(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// scrambledZipf hashes Zipf ranks over the keyspace so the hot set is
// spread across it instead of clustered at the low indexes — YCSB's
// ScrambledZipfianGenerator. Which keys are hot changes; how hot the
// hot set is does not.
type scrambledZipf struct {
	z *Zipf
	n int64
}

// NewScrambledZipf returns a Zipfian chooser whose hot keys are
// FNV-scattered over [0, n).
func NewScrambledZipf(n int64, theta float64, seed int64) KeyChooser {
	return &scrambledZipf{z: NewZipf(n, theta, seed), n: n}
}

func (s *scrambledZipf) Next() int64 {
	return int64(fnv64(uint64(s.z.Next())) % uint64(s.n))
}

// fnv64 is FNV-1a over the 8 little-endian bytes of v — a cheap,
// allocation-free scatter function.
func fnv64(v uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}
