package workload

import (
	"math/bits"
	"time"
)

// Histogram bucket geometry: values below 2^histSubBits nanoseconds
// are recorded exactly (one bucket per nanosecond); above that, each
// power-of-two octave is split into 2^histSubBits linear sub-buckets,
// so the relative bucket width is at most 1/2^histSubBits ≈ 1.6% —
// tighter than any percentile claim the lab makes. The layout covers
// the full int64 nanosecond range (≈292 years) in a fixed array, so
// Record is two shifts, a mask and an increment: no allocation, no
// branch on magnitude classes, nothing for the hot path to contend on
// (each worker owns its histogram; Merge combines them afterwards).
const (
	histSubBits  = 6
	histSubCount = 1 << histSubBits
	histBuckets  = (64 - histSubBits) * histSubCount // indexes [0, histBuckets)
)

// Histogram is a fixed-bucket latency histogram. Not safe for
// concurrent use — give each worker its own and Merge at the end.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    uint64 // total nanoseconds, for Mean
	max    int64  // exact, not bucketed
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	e := 63 - bits.LeadingZeros64(uint64(v))
	return ((e - histSubBits + 1) << histSubBits) | int((v>>(e-histSubBits))&(histSubCount-1))
}

// bucketMid returns the midpoint nanosecond value of a bucket — the
// value percentiles report for samples that landed in it.
func bucketMid(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	octave := idx >> histSubBits
	mantissa := int64(idx & (histSubCount - 1))
	shift := uint(octave - 1)
	lo := (histSubCount + mantissa) << shift
	return lo + int64(1)<<shift/2
}

// Record adds one latency sample. Negative durations count as zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += uint64(v)
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Max returns the largest recorded sample, exactly.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the arithmetic mean of the samples.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Percentile returns the latency at quantile q in [0, 100]: the bucket
// midpoint of the sample with rank ceil(q/100 * count). q=0 returns
// the smallest bucket's value; an empty histogram returns 0.
func (h *Histogram) Percentile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q / 100 * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return time.Duration(bucketMid(i))
		}
	}
	return time.Duration(h.max) // unreachable: counts sum to count
}

// Merge adds every sample of o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}
