// Package workload is the standing workload lab: YCSB-style operation
// mixes, deterministic key choosers (uniform and Zipfian), a
// fixed-bucket latency histogram with no hot-path allocation, and the
// BENCH_*.json result schema every benchmark run is persisted in.
//
// The package is driver-agnostic: anything satisfying Store — notably
// cluster.Client — can be driven. cmd/kvload is the binary front end;
// it runs a named mix through a client-count saturation sweep and
// emits one BENCH_<mix>.json per run, so every PR's perf claim lands
// in one comparable trajectory (latency percentiles, not just
// throughput — a saturated p99 catches regressions a mean hides).
package workload

import (
	"fmt"

	"scalekv/internal/row"
)

// Store is the operation surface a workload drives. cluster.Client
// satisfies it directly; tests use in-memory fakes.
type Store interface {
	Get(pk string, ck []byte) ([]byte, bool, error)
	Put(pk string, ck, value []byte) error
	Scan(pk string, from, to []byte) ([]row.Cell, error)
	Delete(pk string, ck []byte) error
}

// BatchStore is the bulk-load surface (cluster.Client and
// storage.Engine both provide it); LoadKeyspace preloads through it.
type BatchStore interface {
	PutBatch(entries []row.Entry) error
}

// OpKind is one workload operation type.
type OpKind uint8

const (
	OpRead OpKind = iota
	OpUpdate
	OpScan
	OpDelete
	// NumOpKinds sizes per-kind accumulators.
	NumOpKinds = int(OpDelete) + 1
)

// String names the kind as persisted in latency_by_kind_us.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpScan:
		return "scan"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op%d", int(k))
}

// Mix is a named YCSB-style operation mix: per-100 weights for each
// operation kind plus the key distribution the ops draw from. Weights
// must sum to 100.
type Mix struct {
	Name string
	// Read, Update, Scan, Delete are per-100 operation weights.
	Read, Update, Scan, Delete int
	// Zipfian selects the skewed key chooser; Theta is its skew
	// parameter (0 < theta < 1, higher = more skew). Uniform otherwise.
	Zipfian bool
	Theta   float64
}

// Weights returns the cumulative per-100 thresholds used to pick an op
// from a uniform draw in [0,100).
func (m Mix) thresholds() (read, update, scan int) {
	return m.Read, m.Read + m.Update, m.Read + m.Update + m.Scan
}

// NamedMixes are the standing mixes of the lab, in the order kvload
// lists them. read-heavy and update-heavy mirror YCSB B and A,
// scan-heavy mirrors YCSB E, hotspot is the read-heavy point on a
// Zipfian keyspace (the distribution most production KV traffic
// shows), and delete-churn exercises the tombstone path under mixed
// traffic.
var NamedMixes = []Mix{
	{Name: "read-heavy", Read: 95, Update: 5},
	{Name: "update-heavy", Read: 50, Update: 50},
	{Name: "scan-heavy", Scan: 95, Update: 5},
	{Name: "hotspot", Read: 95, Update: 5, Zipfian: true, Theta: 0.99},
	{Name: "delete-churn", Read: 40, Update: 40, Delete: 20},
}

// MixByName resolves a named mix. theta > 0 overrides the mix's skew
// parameter (only meaningful for Zipfian mixes).
func MixByName(name string, theta float64) (Mix, error) {
	for _, m := range NamedMixes {
		if m.Name != name {
			continue
		}
		if theta > 0 {
			m.Theta = theta
		}
		if m.Zipfian && (m.Theta <= 0 || m.Theta >= 1) {
			return Mix{}, fmt.Errorf("workload: mix %q needs 0 < theta < 1, got %g", name, m.Theta)
		}
		if m.Read+m.Update+m.Scan+m.Delete != 100 {
			return Mix{}, fmt.Errorf("workload: mix %q weights sum to %d, want 100", name, m.Read+m.Update+m.Scan+m.Delete)
		}
		return m, nil
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q (have %s)", name, MixNames())
}

// MixNames lists the named mixes for usage text.
func MixNames() string {
	s := ""
	for i, m := range NamedMixes {
		if i > 0 {
			s += " "
		}
		s += m.Name
	}
	return s
}
