package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// SchemaVersion is the BENCH_*.json format generation. Bump it on any
// breaking change to the Result shape; the CI validator rejects files
// from a newer generation so the trajectory stays comparable, but keeps
// reading every generation listed in oldestReadableSchema on.
//
// v2 added the per-op-kind latency split (latency_by_kind_us) and the
// open-loop target rate (workload.rate); v1 files simply lack both, so
// they stay readable.
const SchemaVersion = 2

// oldestReadableSchema is the earliest generation ReadResultFile still
// accepts — cross-PR comparisons need to read the committed trajectory,
// which may predate the current schema.
const oldestReadableSchema = 1

// Result is one persisted benchmark run — the unit of the repo's perf
// trajectory. Every kvload run writes one as BENCH_<mix>.json; CI
// uploads them as build artifacts and validates the schema so a future
// PR comparing numbers knows it compares like with like.
type Result struct {
	Schema  int          `json:"schema"`
	Mix     string       `json:"mix"`
	GitRev  string       `json:"git_rev"`
	Date    string       `json:"date"`
	Quick   bool         `json:"quick,omitempty"`
	Cluster ClusterInfo  `json:"cluster"`
	Work    WorkloadInfo `json:"workload"`
	Load    *LoadPhase   `json:"load,omitempty"`
	Steps   []Step       `json:"steps"`
}

// ClusterInfo records the system under test.
type ClusterInfo struct {
	Nodes             int    `json:"nodes"`
	ReplicationFactor int    `json:"replication_factor"`
	Transport         string `json:"transport"` // inproc | tcp | remote
}

// WorkloadInfo records the traffic shape.
type WorkloadInfo struct {
	Keys        int64   `json:"keys"`
	CellsPerKey int     `json:"cells_per_key"`
	ValueSize   int     `json:"value_size"`
	ReadPct     int     `json:"read_pct"`
	UpdatePct   int     `json:"update_pct"`
	ScanPct     int     `json:"scan_pct"`
	DeletePct   int     `json:"delete_pct"`
	Zipfian     bool    `json:"zipfian"`
	Theta       float64 `json:"theta,omitempty"`
	Seed        int64   `json:"seed"`
	// Rate is the open-loop aggregate arrival rate in ops/sec; 0 means
	// the sweep ran closed-loop (see StepConfig.Rate). Open- and
	// closed-loop runs are not latency-comparable — the validator only
	// checks shape, comparisons must check this field.
	Rate float64 `json:"rate,omitempty"`
}

// LoadPhase is the preload breakdown (batched bulk ingest before the
// measured steps).
type LoadPhase struct {
	Cells       int64   `json:"cells"`
	Seconds     float64 `json:"seconds"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// Step is one point of the saturation sweep: a fixed client-goroutine
// count driven for a fixed duration.
type Step struct {
	Clients     int     `json:"clients"`
	Seconds     float64 `json:"seconds"`
	Ops         uint64  `json:"ops"`
	Errors      uint64  `json:"errors"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	CellsPerSec float64 `json:"cells_per_sec"`
	Latency     Latency `json:"latency_us"`
	// LatencyByKind splits the percentiles per operation kind ("read",
	// "update", "scan", "delete"; kinds the mix never drew are absent),
	// so scan tails stop pooling with point reads. Schema v2; absent in
	// v1 files.
	LatencyByKind map[string]Latency `json:"latency_by_kind_us,omitempty"`
	// Failovers counts reads the client served from a non-primary
	// replica during the step (Client.Failovers delta) — non-zero means
	// the sweep ran against a degraded cluster and its numbers are not
	// trajectory-comparable.
	Failovers int64 `json:"failovers,omitempty"`
}

// Latency is a step's percentile table, in microseconds.
type Latency struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// LatencyFromHistogram converts a histogram into the persisted
// microsecond percentile table.
func LatencyFromHistogram(h *Histogram) Latency {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return Latency{
		P50:  us(h.Percentile(50)),
		P95:  us(h.Percentile(95)),
		P99:  us(h.Percentile(99)),
		P999: us(h.Percentile(99.9)),
		Max:  us(h.Max()),
		Mean: us(h.Mean()),
	}
}

// BenchFileName returns the canonical trajectory file name for a mix.
func BenchFileName(mix string) string { return "BENCH_" + mix + ".json" }

// Validate checks the invariants the CI gate enforces on every
// emitted file: current schema, a named mix, a sane cluster, and for
// every step that did work, internally consistent throughput and a
// monotone non-zero percentile table.
func (r *Result) Validate() error {
	if r.Schema < oldestReadableSchema || r.Schema > SchemaVersion {
		return fmt.Errorf("workload: schema %d, want %d..%d", r.Schema, oldestReadableSchema, SchemaVersion)
	}
	if r.Mix == "" {
		return fmt.Errorf("workload: result has no mix name")
	}
	if r.Cluster.Nodes < 1 {
		return fmt.Errorf("workload: cluster has %d nodes", r.Cluster.Nodes)
	}
	if len(r.Steps) == 0 {
		return fmt.Errorf("workload: result has no steps")
	}
	for i, s := range r.Steps {
		if s.Clients < 1 {
			return fmt.Errorf("workload: step %d: %d clients", i, s.Clients)
		}
		if s.Ops == 0 {
			continue // an idle step is suspicious but not malformed
		}
		if s.OpsPerSec <= 0 || s.Seconds <= 0 {
			return fmt.Errorf("workload: step %d: %d ops but %.3g ops/sec over %.3gs", i, s.Ops, s.OpsPerSec, s.Seconds)
		}
		l := s.Latency
		if l.P50 <= 0 {
			return fmt.Errorf("workload: step %d: zero p50 with %d ops", i, s.Ops)
		}
		if l.P95 < l.P50 || l.P99 < l.P95 || l.P999 < l.P99 || l.Max < l.P999 {
			return fmt.Errorf("workload: step %d: non-monotone percentiles %+v", i, l)
		}
		for kind, kl := range s.LatencyByKind {
			if kl.P95 < kl.P50 || kl.P99 < kl.P95 || kl.P999 < kl.P99 || kl.Max < kl.P999 {
				return fmt.Errorf("workload: step %d: non-monotone %s percentiles %+v", i, kind, kl)
			}
		}
	}
	return nil
}

// WriteFile validates and persists the result as indented JSON.
func (r *Result) WriteFile(path string) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadResultFile parses and validates a persisted result — the CI
// artifact gate and cross-PR comparisons both come through here.
func ReadResultFile(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
