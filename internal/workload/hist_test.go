package workload

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistogramPercentilesAgainstOracle records a few distributions
// and checks every reported percentile against the exact sorted-slice
// answer: the bucketed value must sit within one bucket width
// (≈1.6% relative) of the oracle.
func TestHistogramPercentilesAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	cases := map[string]func() int64{
		// Cluster-like latencies: microseconds with a heavy tail.
		"lognormal-us": func() int64 {
			return int64(20_000 * (0.5 + r.ExpFloat64()))
		},
		"uniform-wide": func() int64 { return 1 + r.Int63n(5_000_000_000) },
		"tiny-ns":      func() int64 { return r.Int63n(200) },
	}
	for name, gen := range cases {
		h := NewHistogram()
		samples := make([]int64, 50_000)
		for i := range samples {
			v := gen()
			samples[i] = v
			h.Record(time.Duration(v))
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		if h.Count() != uint64(len(samples)) {
			t.Fatalf("%s: count %d, want %d", name, h.Count(), len(samples))
		}
		if h.Max() != time.Duration(samples[len(samples)-1]) {
			t.Fatalf("%s: max %d, want %d (max must be exact)", name, h.Max(), samples[len(samples)-1])
		}
		for _, q := range []float64{50, 90, 95, 99, 99.9} {
			rank := int(q / 100 * float64(len(samples)))
			if rank < 1 {
				rank = 1
			}
			oracle := samples[rank-1]
			got := int64(h.Percentile(q))
			// One bucket of slack: 2^-histSubBits relative plus a
			// couple ns absolute for the exact low range.
			slack := oracle>>histSubBits + 2
			if got < oracle-slack || got > oracle+slack {
				t.Fatalf("%s: p%v = %d, oracle %d (slack %d)", name, q, got, oracle, slack)
			}
		}
	}
}

// TestHistogramEdges pins empty and single-sample behaviour, merge
// correctness, and the negative-duration clamp.
func TestHistogramEdges(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}

	h.Record(1500 * time.Nanosecond)
	p := h.Percentile(50)
	if p < 1480 || p > 1520 {
		t.Fatalf("single sample 1500ns reported as %v", p)
	}
	if h.Percentile(99.9) != p {
		t.Fatal("all percentiles of a single sample must agree")
	}

	h.Record(-time.Second) // clamps to zero, never panics
	if h.Count() != 2 {
		t.Fatalf("count %d, want 2", h.Count())
	}

	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 1000; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
		b.Record(time.Duration(i) * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count %d, want 2000", a.Count())
	}
	if a.Max() != time.Second {
		t.Fatalf("merged max %v, want 1s", a.Max())
	}
	// Median of the merged set sits at the boundary between the two
	// source distributions.
	if p := a.Percentile(50); p < 900*time.Microsecond || p > 1100*time.Microsecond {
		t.Fatalf("merged p50 %v, want ≈1ms", p)
	}
}
