package workload

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleResult() *Result {
	return &Result{
		Schema: SchemaVersion,
		Mix:    "hotspot",
		GitRev: "abc1234",
		Date:   "2026-08-08",
		Quick:  true,
		Cluster: ClusterInfo{
			Nodes: 4, ReplicationFactor: 2, Transport: "inproc",
		},
		Work: WorkloadInfo{
			Keys: 4000, CellsPerKey: 4, ValueSize: 64,
			ReadPct: 95, UpdatePct: 5, Zipfian: true, Theta: 0.99, Seed: 42,
			Rate: 25000,
		},
		Load: &LoadPhase{Cells: 16000, Seconds: 0.5, CellsPerSec: 32000},
		Steps: []Step{
			{
				Clients: 4, Seconds: 2.0, Ops: 100000, OpsPerSec: 50000,
				CellsPerSec: 51000,
				Latency:     Latency{P50: 60, P95: 110, P99: 240, P999: 800, Max: 4200, Mean: 72},
				LatencyByKind: map[string]Latency{
					"read":   {P50: 55, P95: 100, P99: 220, P999: 750, Max: 4200, Mean: 66},
					"update": {P50: 90, P95: 160, P99: 300, P999: 800, Max: 2100, Mean: 104},
				},
			},
		},
	}
}

// TestResultRoundTrip pins the BENCH_*.json schema: encode → decode →
// deep-equal, and the exact serialized field names. A field rename or
// type change must fail here (and must bump SchemaVersion).
func TestResultRoundTrip(t *testing.T) {
	r := sampleResult()
	if BenchFileName(r.Mix) != "BENCH_hotspot.json" {
		t.Fatalf("bench file name changed: %s", BenchFileName(r.Mix))
	}
	path := filepath.Join(t.TempDir(), BenchFileName(r.Mix))
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Fatalf("round trip changed the result:\nwrote %+v\nread  %+v", r, back)
	}

	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	// The serialized names are the cross-PR contract: a rename breaks
	// every comparison script without failing compilation.
	for _, key := range []string{
		`"schema":2`, `"mix":"hotspot"`, `"git_rev"`, `"date"`, `"quick"`,
		`"cluster"`, `"nodes":4`, `"replication_factor":2`, `"transport":"inproc"`,
		`"workload"`, `"keys":4000`, `"cells_per_key":4`, `"value_size":64`,
		`"read_pct":95`, `"update_pct":5`, `"scan_pct":0`, `"delete_pct":0`,
		`"zipfian":true`, `"theta":0.99`, `"seed":42`,
		`"load"`, `"cells":16000`, `"cells_per_sec"`,
		`"steps"`, `"clients":4`, `"ops":100000`, `"errors":0`, `"ops_per_sec":50000`,
		`"latency_us"`, `"p50":60`, `"p95":110`, `"p99":240`, `"p999":800`, `"max":4200`, `"mean":72`,
		`"rate":25000`, `"latency_by_kind_us"`, `"read":{"p50":55`, `"update":{"p50":90`,
	} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("serialized result lost %s:\n%s", key, data)
		}
	}
}

// TestResultValidate walks the malformed shapes the CI gate must
// reject.
func TestResultValidate(t *testing.T) {
	break_ := func(f func(*Result)) *Result {
		r := sampleResult()
		f(r)
		return r
	}
	bad := map[string]*Result{
		"wrong schema":   break_(func(r *Result) { r.Schema = SchemaVersion + 1 }),
		"no mix":         break_(func(r *Result) { r.Mix = "" }),
		"no nodes":       break_(func(r *Result) { r.Cluster.Nodes = 0 }),
		"no steps":       break_(func(r *Result) { r.Steps = nil }),
		"zero clients":   break_(func(r *Result) { r.Steps[0].Clients = 0 }),
		"ops no rate":    break_(func(r *Result) { r.Steps[0].OpsPerSec = 0 }),
		"ops zero p50":   break_(func(r *Result) { r.Steps[0].Latency.P50 = 0 }),
		"non-monotone":   break_(func(r *Result) { r.Steps[0].Latency.P99 = r.Steps[0].Latency.P50 / 2 }),
		"max below p999": break_(func(r *Result) { r.Steps[0].Latency.Max = 1 }),
		"non-monotone kind": break_(func(r *Result) {
			r.Steps[0].LatencyByKind["read"] = Latency{P50: 60, P95: 30, P99: 240, P999: 800, Max: 4200}
		}),
	}
	for name, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed result", name)
		}
	}
	if err := sampleResult().Validate(); err != nil {
		t.Fatalf("valid sample rejected: %v", err)
	}
	// An idle step (zero ops) is allowed — its percentiles are
	// legitimately zero.
	idle := sampleResult()
	idle.Steps = append(idle.Steps, Step{Clients: 8})
	if err := idle.Validate(); err != nil {
		t.Fatalf("idle step rejected: %v", err)
	}
}

// TestResultReadsOlderSchemas pins backward readability: the committed
// trajectory holds v1 files (no per-kind latencies, no rate), and
// cross-PR comparisons must keep reading every generation back to
// oldestReadableSchema.
func TestResultReadsOlderSchemas(t *testing.T) {
	v1 := sampleResult()
	v1.Schema = 1
	v1.Work.Rate = 0
	v1.Steps[0].LatencyByKind = nil
	path := filepath.Join(t.TempDir(), BenchFileName(v1.Mix))
	if err := v1.WriteFile(path); err != nil {
		t.Fatalf("v1 result rejected on write: %v", err)
	}
	back, err := ReadResultFile(path)
	if err != nil {
		t.Fatalf("v1 result rejected on read: %v", err)
	}
	if back.Schema != 1 || back.Steps[0].LatencyByKind != nil {
		t.Fatalf("v1 round trip mutated the result: %+v", back)
	}
}
