package workload

import (
	"math"
	"testing"
)

// TestZipfDeterministic pins the property BENCH comparability rests
// on: a fixed seed replays the exact same draw sequence, and distinct
// seeds do not.
func TestZipfDeterministic(t *testing.T) {
	const n, theta = 10_000, 0.99
	a := NewZipf(n, theta, 42)
	b := NewZipf(n, theta, 42)
	c := NewZipf(n, theta, 43)
	var diverged bool
	for i := 0; i < 1000; i++ {
		av, bv, cv := a.Next(), b.Next(), c.Next()
		if av != bv {
			t.Fatalf("draw %d: same seed diverged: %d vs %d", i, av, bv)
		}
		if av != cv {
			diverged = true
		}
		if av < 0 || av >= n {
			t.Fatalf("draw %d: rank %d out of [0,%d)", i, av, n)
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical 1000-draw sequences")
	}

	s1 := NewScrambledZipf(n, theta, 7)
	s2 := NewScrambledZipf(n, theta, 7)
	for i := 0; i < 1000; i++ {
		v1, v2 := s1.Next(), s2.Next()
		if v1 != v2 {
			t.Fatalf("scrambled draw %d: same seed diverged: %d vs %d", i, v1, v2)
		}
		if v1 < 0 || v1 >= n {
			t.Fatalf("scrambled draw %d: key %d out of [0,%d)", i, v1, n)
		}
	}
}

// TestZipfSkew checks theta actually produces the advertised skew: the
// share of draws landing on the top 1% of ranks must match the
// analytic zeta ratio, and a uniform control must not be skewed. The
// analytic share for theta=0.99 over 10k keys is ≈0.47 — about half
// of all traffic on 100 keys, which is the whole point of the hotspot
// mix.
func TestZipfSkew(t *testing.T) {
	const (
		n     int64 = 10_000
		theta       = 0.99
		draws       = 200_000
	)
	want := zeta(n/100, theta) / zeta(n, theta)

	z := NewZipf(n, theta, 1)
	top := 0
	for i := 0; i < draws; i++ {
		if z.Next() < n/100 {
			top++
		}
	}
	got := float64(top) / draws
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("top-1%% share: got %.3f, analytic %.3f", got, want)
	}

	// The scrambled variant moves the hot set but not its weight: count
	// per-key frequencies and take the heaviest 1%.
	s := NewScrambledZipf(n, theta, 1)
	freq := make([]int, n)
	for i := 0; i < draws; i++ {
		freq[s.Next()]++
	}
	hot := topShare(freq, int(n/100), draws)
	// FNV collisions can merge ranks onto one key, so allow a little
	// more slack than the unscrambled bound — but the skew must be
	// intact.
	if math.Abs(hot-want) > 0.06 {
		t.Fatalf("scrambled top-1%% share: got %.3f, analytic %.3f", hot, want)
	}

	u := NewUniform(n, 1)
	top = 0
	for i := 0; i < draws; i++ {
		if u.Next() < n/100 {
			top++
		}
	}
	if got := float64(top) / draws; got > 0.05 {
		t.Fatalf("uniform control: top-1%% share %.3f, want ≈0.01", got)
	}
}

// topShare returns the draw share of the k most frequent keys.
func topShare(freq []int, k, draws int) float64 {
	// Selection by repeated max would be quadratic; a simple counting
	// cut-off is fine at test sizes.
	sorted := append([]int(nil), freq...)
	for i := range sorted { // insertion-sort descending the top k only
		maxAt := i
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[maxAt] {
				maxAt = j
			}
		}
		sorted[i], sorted[maxAt] = sorted[maxAt], sorted[i]
		if i >= k {
			break
		}
	}
	sum := 0
	for _, c := range sorted[:k] {
		sum += c
	}
	return float64(sum) / float64(draws)
}
