package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"scalekv/internal/row"
)

// Keyspace is the pre-generated key material a run draws from: nothing
// is formatted on the hot path. Every PK holds CellsPerKey cells
// (distinct CKs), so scans return multi-cell partitions and updates
// spread over the cells of a partition.
type Keyspace struct {
	PKs   []string
	CKs   [][]byte
	Value []byte
}

// NewKeyspace builds n partition keys with cellsPerKey cells each and
// one shared valueSize-byte payload (deterministic from seed). The
// payload buffer is read-only by convention: the client marshals it
// into each request, so all writers can share it.
func NewKeyspace(n int64, cellsPerKey, valueSize int, seed int64) *Keyspace {
	ks := &Keyspace{
		PKs:   make([]string, n),
		CKs:   make([][]byte, cellsPerKey),
		Value: make([]byte, valueSize),
	}
	for i := int64(0); i < n; i++ {
		ks.PKs[i] = fmt.Sprintf("user%08d", i)
	}
	for c := 0; c < cellsPerKey; c++ {
		ks.CKs[c] = []byte(fmt.Sprintf("f%02d", c))
	}
	rand.New(rand.NewSource(seed)).Read(ks.Value)
	return ks
}

// Cells returns the total cell count of the keyspace.
func (ks *Keyspace) Cells() int64 { return int64(len(ks.PKs)) * int64(len(ks.CKs)) }

// LoadKeyspace preloads every cell of the keyspace through the batched
// write path, batchSize entries per PutBatch. Returns the cell count
// written.
func LoadKeyspace(s BatchStore, ks *Keyspace, batchSize int) (int64, error) {
	if batchSize < 1 {
		batchSize = 256
	}
	batch := make([]row.Entry, 0, batchSize)
	var cells int64
	for _, pk := range ks.PKs {
		for _, ck := range ks.CKs {
			batch = append(batch, row.Entry{PK: pk, CK: ck, Value: ks.Value})
			if len(batch) == batchSize {
				if err := s.PutBatch(batch); err != nil {
					return cells, err
				}
				cells += int64(len(batch))
				batch = batch[:0]
			}
		}
	}
	if len(batch) > 0 {
		if err := s.PutBatch(batch); err != nil {
			return cells, err
		}
		cells += int64(len(batch))
	}
	return cells, nil
}

// StepConfig shapes one measured step of a sweep.
type StepConfig struct {
	// Clients is the concurrent worker-goroutine count.
	Clients int
	// Duration bounds the step in wall time (0 = unbounded; then
	// MaxOps must be set).
	Duration time.Duration
	// MaxOps bounds the step in total operations across all workers
	// (0 = unbounded; then Duration must be set). Tests use this for
	// determinism.
	MaxOps int64
	// Seed derives every worker's chooser and op stream; a fixed seed
	// replays the same key/op sequences per worker.
	Seed int64
	// Rate, when positive, switches the step to an open-loop arrival
	// schedule: operations are issued at this aggregate rate (ops/sec
	// across all workers) and each op's latency is measured from its
	// SCHEDULED arrival time, not from when the worker got around to
	// issuing it. A store that stalls therefore accrues the queueing
	// delay of every op scheduled behind the stall — the coordinated-
	// omission correction a closed loop silently lacks. 0 keeps the
	// closed loop: each worker issues as fast as the store answers.
	Rate float64
}

// StepResult is one measured step: merged latency histogram plus op
// and error counts. Errors are transport/storage failures — a read
// that found nothing is a normal outcome, not an error.
type StepResult struct {
	Clients int
	Elapsed time.Duration
	Ops     uint64
	Errors  uint64
	// Cells counts cells touched: 1 per read/update/delete, the scan's
	// result size per scan — the unit the paper-era benches report, so
	// cells/sec stays comparable with them.
	Cells uint64
	Hist  *Histogram
	// ByKind splits the latency samples per operation kind (indexed by
	// OpKind), so a mix's scan tail cannot hide in — or inflate — its
	// point-read percentiles. Entries for kinds the mix never drew are
	// nil.
	ByKind [NumOpKinds]*Histogram
}

// ToStep converts a measured step into its persisted form.
func (r StepResult) ToStep(failovers int64) Step {
	sec := r.Elapsed.Seconds()
	s := Step{
		Clients:   r.Clients,
		Seconds:   sec,
		Ops:       r.Ops,
		Errors:    r.Errors,
		Latency:   LatencyFromHistogram(r.Hist),
		Failovers: failovers,
	}
	if sec > 0 {
		s.OpsPerSec = float64(r.Ops) / sec
		s.CellsPerSec = float64(r.Cells) / sec
	}
	for k, h := range r.ByKind {
		if h == nil || h.Count() == 0 {
			continue
		}
		if s.LatencyByKind == nil {
			s.LatencyByKind = make(map[string]Latency, NumOpKinds)
		}
		s.LatencyByKind[OpKind(k).String()] = LatencyFromHistogram(h)
	}
	return s
}

// RunStep drives the mix against the store with cfg.Clients worker
// goroutines until the duration or op budget runs out. Each worker
// owns its chooser, op stream and histograms (merged at the end), so
// the measurement loop itself is allocation- and contention-free; the
// per-op cost it adds over the store call is two PRNG draws, a clock
// read and two histogram increments. With cfg.Rate set the loop is
// open: the aggregate schedule is divided evenly across workers,
// staggered so arrivals interleave, and latency runs from each op's
// scheduled arrival (see StepConfig.Rate).
func RunStep(s Store, mix Mix, ks *Keyspace, cfg StepConfig) StepResult {
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	readT, updateT, scanT := mix.thresholds()
	var opBudget atomic.Int64 // counts down when MaxOps is set

	opBudget.Store(cfg.MaxOps)
	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	var interval time.Duration // per-worker arrival spacing (open loop)
	if cfg.Rate > 0 {
		interval = time.Duration(float64(cfg.Clients) * float64(time.Second) / cfg.Rate)
		if interval <= 0 {
			interval = 1
		}
	}

	workers := make([]StepResult, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Distinct per-worker seeds: identical seeds would make
			// every worker hammer the same key sequence in lockstep.
			chooser := NewChooser(mix, int64(len(ks.PKs)), cfg.Seed+int64(w)*7919)
			ops := rand.New(rand.NewSource(cfg.Seed ^ (int64(w)+1)*104729))
			res := StepResult{Hist: NewHistogram()}
			for k := range res.ByKind {
				res.ByKind[k] = NewHistogram()
			}
			// Open loop: worker w serves arrivals w, w+C, w+2C, ... of the
			// aggregate schedule, so its own schedule is start + w/rate +
			// k*interval.
			next := start.Add(time.Duration(w) * interval / time.Duration(cfg.Clients))
			for {
				if cfg.MaxOps > 0 && opBudget.Add(-1) < 0 {
					break
				}
				var begin time.Time
				if interval > 0 {
					if cfg.Duration > 0 && next.After(deadline) {
						break // the next arrival is past the step's end
					}
					if now := time.Now(); now.Before(next) {
						time.Sleep(next.Sub(now))
					}
					// The scheduled arrival, not "now": an op issued late
					// because the store stalled the worker is charged its
					// wait in line.
					begin = next
					next = next.Add(interval)
				} else if cfg.Duration > 0 && time.Now().After(deadline) {
					break
				}
				pk := ks.PKs[chooser.Next()]
				ck := ks.CKs[ops.Intn(len(ks.CKs))]
				kind := opKind(ops.Intn(100), readT, updateT, scanT)
				if interval == 0 {
					begin = time.Now()
				}
				var err error
				cells := uint64(1)
				switch kind {
				case OpRead:
					_, _, err = s.Get(pk, ck)
				case OpUpdate:
					err = s.Put(pk, ck, ks.Value)
				case OpScan:
					var got []row.Cell
					got, err = s.Scan(pk, nil, nil)
					cells = uint64(len(got))
				case OpDelete:
					err = s.Delete(pk, ck)
				}
				lat := time.Since(begin)
				res.Hist.Record(lat)
				res.ByKind[kind].Record(lat)
				res.Ops++
				res.Cells += cells
				if err != nil {
					res.Errors++
				}
			}
			workers[w] = res
		}(w)
	}
	wg.Wait()

	total := StepResult{Clients: cfg.Clients, Elapsed: time.Since(start), Hist: NewHistogram()}
	for k := range total.ByKind {
		total.ByKind[k] = NewHistogram()
	}
	for _, res := range workers {
		total.Ops += res.Ops
		total.Errors += res.Errors
		total.Cells += res.Cells
		total.Hist.Merge(res.Hist)
		for k, h := range res.ByKind {
			if h != nil {
				total.ByKind[k].Merge(h)
			}
		}
	}
	return total
}

// opKind picks the operation for one uniform draw in [0,100) against
// the mix's cumulative thresholds.
func opKind(draw, readT, updateT, scanT int) OpKind {
	switch {
	case draw < readT:
		return OpRead
	case draw < updateT:
		return OpUpdate
	case draw < scanT:
		return OpScan
	default:
		return OpDelete
	}
}
