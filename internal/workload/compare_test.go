package workload

import (
	"strings"
	"testing"
)

func TestCompareResults(t *testing.T) {
	base := sampleResult()
	fresh := sampleResult()

	regs, err := CompareResults(base, fresh, 0.10)
	if err != nil || len(regs) != 0 {
		t.Fatalf("identical runs flagged: %v %v", regs, err)
	}

	// 5% drop is inside a 10% tolerance; 20% is not.
	fresh.Steps[0].OpsPerSec = base.Steps[0].OpsPerSec * 0.95
	if regs, _ = CompareResults(base, fresh, 0.10); len(regs) != 0 {
		t.Fatalf("5%% throughput drop flagged at 10%% tolerance: %v", regs)
	}
	fresh.Steps[0].OpsPerSec = base.Steps[0].OpsPerSec * 0.80
	regs, _ = CompareResults(base, fresh, 0.10)
	if len(regs) != 1 || regs[0].Metric != "ops_per_sec" {
		t.Fatalf("20%% throughput drop not flagged: %v", regs)
	}
	if !strings.Contains(regs[0].String(), "ops_per_sec") {
		t.Fatalf("regression string lost its metric: %s", regs[0])
	}

	// p99 regression is oriented the other way (growth is bad), and an
	// improvement is never a regression.
	fresh = sampleResult()
	fresh.Steps[0].Latency.P99 = base.Steps[0].Latency.P99 * 1.5
	regs, _ = CompareResults(base, fresh, 0.10)
	if len(regs) != 1 || regs[0].Metric != "p99_us" {
		t.Fatalf("p99 regression not flagged: %v", regs)
	}
	fresh.Steps[0].Latency.P99 = base.Steps[0].Latency.P99 * 0.5
	fresh.Steps[0].OpsPerSec = base.Steps[0].OpsPerSec * 2
	if regs, _ = CompareResults(base, fresh, 0.10); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}

	// Unmatched client counts are skipped, not compared.
	fresh = sampleResult()
	fresh.Steps[0].Clients = 99
	fresh.Steps[0].OpsPerSec = 1
	if regs, _ = CompareResults(base, fresh, 0.10); len(regs) != 0 {
		t.Fatalf("unmatched step compared: %v", regs)
	}

	// Different mixes and mixed loop disciplines are hard errors.
	fresh = sampleResult()
	fresh.Mix = "read-heavy"
	if _, err = CompareResults(base, fresh, 0.10); err == nil {
		t.Fatal("cross-mix comparison accepted")
	}
	fresh = sampleResult()
	fresh.Work.Rate = 0
	base.Work.Rate = 25000
	if _, err = CompareResults(base, fresh, 0.10); err == nil {
		t.Fatal("open-vs-closed-loop comparison accepted")
	}
}
