package workload

import "fmt"

// Regression is one step-level perf delta that crossed the comparison
// tolerance: throughput down or p99 up by more than the allowed
// fraction versus the committed baseline.
type Regression struct {
	Mix     string
	Clients int
	Metric  string // "ops_per_sec" | "p99_us"
	Base    float64
	Fresh   float64
	// Delta is the signed fractional change, oriented so positive is
	// always worse (throughput loss, latency gain).
	Delta float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s @%d clients: %s %.0f -> %.0f (%+.1f%%)",
		r.Mix, r.Clients, r.Metric, r.Base, r.Fresh, r.Delta*100)
}

// CompareResults diffs a fresh run against a committed baseline of the
// same mix and returns every step where throughput fell or p99 rose by
// more than tolerance (a fraction: 0.10 = 10%). Steps are matched by
// client count — a sweep-shape change (different -clients) yields no
// match and no regression, since the numbers are not comparable.
// Open- and closed-loop runs are likewise never compared: an open
// loop's p99 includes queueing delay by design.
func CompareResults(base, fresh *Result, tolerance float64) ([]Regression, error) {
	if base.Mix != fresh.Mix {
		return nil, fmt.Errorf("workload: comparing different mixes %q vs %q", base.Mix, fresh.Mix)
	}
	if (base.Work.Rate > 0) != (fresh.Work.Rate > 0) {
		return nil, fmt.Errorf("workload: comparing open-loop and closed-loop runs (rate %g vs %g)", base.Work.Rate, fresh.Work.Rate)
	}
	byClients := make(map[int]Step, len(base.Steps))
	for _, s := range base.Steps {
		byClients[s.Clients] = s
	}
	var regs []Regression
	for _, f := range fresh.Steps {
		b, ok := byClients[f.Clients]
		if !ok || b.Ops == 0 || f.Ops == 0 {
			continue
		}
		if b.OpsPerSec > 0 {
			if loss := (b.OpsPerSec - f.OpsPerSec) / b.OpsPerSec; loss > tolerance {
				regs = append(regs, Regression{
					Mix: fresh.Mix, Clients: f.Clients, Metric: "ops_per_sec",
					Base: b.OpsPerSec, Fresh: f.OpsPerSec, Delta: loss,
				})
			}
		}
		if b.Latency.P99 > 0 {
			if gain := (f.Latency.P99 - b.Latency.P99) / b.Latency.P99; gain > tolerance {
				regs = append(regs, Regression{
					Mix: fresh.Mix, Clients: f.Clients, Metric: "p99_us",
					Base: b.Latency.P99, Fresh: f.Latency.P99, Delta: gain,
				})
			}
		}
	}
	return regs, nil
}
