package workload

import (
	"sync"
	"testing"

	"scalekv/internal/row"
)

// fakeStore is an in-memory Store that counts operations by kind.
type fakeStore struct {
	mu    sync.Mutex
	cells map[string]map[string][]byte
	ops   [4]uint64 // indexed by OpKind
}

func newFakeStore() *fakeStore {
	return &fakeStore{cells: make(map[string]map[string][]byte)}
}

func (f *fakeStore) Get(pk string, ck []byte) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops[OpRead]++
	v, ok := f.cells[pk][string(ck)]
	return v, ok, nil
}

func (f *fakeStore) Put(pk string, ck, value []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops[OpUpdate]++
	if f.cells[pk] == nil {
		f.cells[pk] = make(map[string][]byte)
	}
	f.cells[pk][string(ck)] = value
	return nil
}

func (f *fakeStore) Scan(pk string, from, to []byte) ([]row.Cell, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops[OpScan]++
	var out []row.Cell
	for ck, v := range f.cells[pk] {
		out = append(out, row.Cell{CK: []byte(ck), Value: v})
	}
	return out, nil
}

func (f *fakeStore) Delete(pk string, ck []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops[OpDelete]++
	delete(f.cells[pk], string(ck))
	return nil
}

func (f *fakeStore) PutBatch(entries []row.Entry) error {
	for _, e := range entries {
		if err := f.Put(e.PK, e.CK, e.Value); err != nil {
			return err
		}
	}
	return nil
}

// TestRunStepHonorsMix drives every named mix for a fixed op budget
// and checks the store saw the advertised op proportions, the op
// budget was respected, and the measurement bookkeeping adds up.
func TestRunStepHonorsMix(t *testing.T) {
	for _, mix := range NamedMixes {
		t.Run(mix.Name, func(t *testing.T) {
			store := newFakeStore()
			ks := NewKeyspace(500, 4, 32, 1)
			if n, err := LoadKeyspace(store, ks, 64); err != nil || n != ks.Cells() {
				t.Fatalf("load: %d cells, err %v", n, err)
			}
			// The load phase went through Put; reset counters so only
			// measured traffic is checked.
			store.ops = [4]uint64{}

			const budget = 8000
			res := RunStep(store, mix, ks, StepConfig{Clients: 4, MaxOps: budget, Seed: 42})
			if res.Ops != budget {
				t.Fatalf("ran %d ops, budget %d", res.Ops, budget)
			}
			if res.Errors != 0 {
				t.Fatalf("%d errors from an error-free store", res.Errors)
			}
			if res.Hist.Count() != res.Ops {
				t.Fatalf("histogram has %d samples for %d ops", res.Hist.Count(), res.Ops)
			}
			if res.Hist.Percentile(50) <= 0 {
				t.Fatal("zero p50 after real ops")
			}
			var seen uint64
			for kind, weight := range map[OpKind]int{
				OpRead: mix.Read, OpUpdate: mix.Update, OpScan: mix.Scan, OpDelete: mix.Delete,
			} {
				got := store.ops[kind]
				seen += got
				want := uint64(budget * weight / 100)
				slack := uint64(budget / 25) // ±4% on a uniform draw over 8k ops
				if got+slack < want || got > want+slack {
					t.Errorf("op %d: %d of %d ops, want ≈%d (weight %d)", kind, got, budget, want, weight)
				}
			}
			if seen != budget {
				t.Fatalf("store saw %d ops, runner claims %d", seen, budget)
			}
		})
	}
}

// TestRunStepDeterministicKeys pins that a fixed seed replays the same
// key traffic: two runs against fresh stores leave identical contents.
func TestRunStepDeterministicKeys(t *testing.T) {
	mix, err := MixByName("delete-churn", 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func() map[string]map[string][]byte {
		store := newFakeStore()
		ks := NewKeyspace(200, 2, 16, 7)
		if _, err := LoadKeyspace(store, ks, 32); err != nil {
			t.Fatal(err)
		}
		// One worker: with several, goroutine interleaving reorders
		// deletes against puts and the final contents may differ.
		RunStep(store, mix, ks, StepConfig{Clients: 1, MaxOps: 3000, Seed: 99})
		return store.cells
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged: %d vs %d partitions", len(a), len(b))
	}
	for pk, cells := range a {
		if len(cells) != len(b[pk]) {
			t.Fatalf("partition %q diverged: %d vs %d cells", pk, len(cells), len(b[pk]))
		}
	}
}
