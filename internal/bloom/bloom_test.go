package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewWithRate(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.AddString(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContainString(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 10000
	f := NewWithRate(n, 0.01)
	for i := 0; i < n; i++ {
		f.AddString(fmt.Sprintf("member-%d", i))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.MayContainString(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f, want <= 0.03 for 1%% target", rate)
	}
	if est := f.EstimatedFalsePositiveRate(); est > 0.02 {
		t.Fatalf("analytic estimate %.4f unexpectedly high", est)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(1024, 5)
	if f.MayContainString("anything") {
		t.Fatal("empty filter claimed membership")
	}
	if f.EstimatedFalsePositiveRate() != 0 {
		t.Fatal("empty filter must estimate 0 fp rate")
	}
}

func TestSizingClamps(t *testing.T) {
	f := New(1, 0)
	if f.Bits() < 64 || f.k != 1 {
		t.Fatalf("clamps not applied: bits=%d k=%d", f.Bits(), f.k)
	}
	g := NewWithRate(0, 2.0) // nonsense inputs fall back to defaults
	if g.Bits() == 0 {
		t.Fatal("NewWithRate produced empty filter")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := NewWithRate(500, 0.02)
	for i := 0; i < 500; i++ {
		f.AddString(fmt.Sprintf("rt-%d", i))
	}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != f.Count() || g.Bits() != f.Bits() {
		t.Fatalf("metadata mismatch after round trip")
	}
	for i := 0; i < 500; i++ {
		if !g.MayContainString(fmt.Sprintf("rt-%d", i)) {
			t.Fatalf("false negative after round trip for rt-%d", i)
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 10),
		make([]byte, 21), // length not matching header
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestQuickMembershipProperty(t *testing.T) {
	f := NewWithRate(2000, 0.01)
	prop := func(key []byte) bool {
		f.Add(key)
		return f.MayContain(key)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := NewWithRate(1<<20, 0.01)
	key := []byte("benchmark-key-000000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[len(key)-1] = byte(i)
		f.Add(key)
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := NewWithRate(1<<20, 0.01)
	for i := 0; i < 100000; i++ {
		f.AddString(fmt.Sprintf("key-%d", i))
	}
	key := []byte("key-50000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(key)
	}
}
