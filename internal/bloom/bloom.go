// Package bloom implements the per-SSTable bloom filter the storage
// engine consults before touching a sorted run on the read path, exactly
// the role the paper ascribes to Cassandra's filters ("caches, indexes and
// bloom filters ... minimise the duration of most of the requests at the
// cost of introducing variance").
//
// The filter derives its k probe positions from a single 128-bit murmur
// hash using the standard Kirsch-Mitzenmacher double-hashing construction,
// so adding and testing a key costs one hash regardless of k.
package bloom

import (
	"encoding/binary"
	"errors"
	"math"

	"scalekv/internal/murmur"
)

// Filter is a classic m-bit, k-hash bloom filter. The zero value is not
// usable; construct with New or NewWithRate.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    uint32 // number of probes
	n    uint64 // keys added
}

// New creates a filter with m bits (rounded up to a multiple of 64) and k
// probes. m and k are clamped to at least 64 and 1.
func New(m uint64, k uint32) *Filter {
	if m < 64 {
		m = 64
	}
	if k < 1 {
		k = 1
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, k: k}
}

// NewWithRate sizes a filter for n expected keys at the target false
// positive rate p using the textbook optimum m = -n*ln(p)/ln(2)^2 and
// k = m/n*ln(2).
func NewWithRate(n int, p float64) *Filter {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := uint32(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k)
}

// Add inserts key into the filter.
func (f *Filter) Add(key []byte) {
	h1, h2 := murmur.Sum128(key)
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.n++
}

// AddString inserts a string key.
func (f *Filter) AddString(key string) { f.Add([]byte(key)) }

// MayContain reports whether key may have been added. False means the key
// was definitely never added.
func (f *Filter) MayContain(key []byte) bool {
	h1, h2 := murmur.Sum128(key)
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// MayContainString tests a string key.
func (f *Filter) MayContainString(key string) bool { return f.MayContain([]byte(key)) }

// Count returns how many keys have been added.
func (f *Filter) Count() uint64 { return f.n }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// EstimatedFalsePositiveRate returns the analytic false-positive
// probability (1-e^{-kn/m})^k for the current fill.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	if f.n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.m)), float64(f.k))
}

// Marshal serializes the filter for embedding into an SSTable footer.
// Layout: m(8) k(4) n(8) words...
func (f *Filter) Marshal() []byte {
	out := make([]byte, 8+4+8+len(f.bits)*8)
	binary.LittleEndian.PutUint64(out[0:], f.m)
	binary.LittleEndian.PutUint32(out[8:], f.k)
	binary.LittleEndian.PutUint64(out[12:], f.n)
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(out[20+i*8:], w)
	}
	return out
}

// ErrCorrupt reports a malformed serialized filter.
var ErrCorrupt = errors.New("bloom: corrupt serialized filter")

// Unmarshal reconstructs a filter serialized by Marshal.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < 20 {
		return nil, ErrCorrupt
	}
	m := binary.LittleEndian.Uint64(data[0:])
	k := binary.LittleEndian.Uint32(data[8:])
	n := binary.LittleEndian.Uint64(data[12:])
	words := int(m / 64)
	if m%64 != 0 || k == 0 || len(data) != 20+words*8 {
		return nil, ErrCorrupt
	}
	f := &Filter{bits: make([]uint64, words), m: m, k: k, n: n}
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(data[20+i*8:])
	}
	return f, nil
}
