package scalekv

import (
	"scalekv/internal/cluster"
	"scalekv/internal/core"
	"scalekv/internal/d8tree"
	"scalekv/internal/hashring"
	"scalekv/internal/master"
	"scalekv/internal/row"
	"scalekv/internal/storage"
	"scalekv/internal/wire"
)

// --- The analytical model (the paper's contribution) ---------------------

// System is the Formula 2 model: database regressions plus master
// messaging costs. See internal/core for the full method set
// (Predict, OptimalKeys, LossAtOptimum, MasterLimit, ...).
type System = core.System

// DBModel is the database component model (Formulas 6-8).
type DBModel = core.DBModel

// Prediction is the model output for one configuration.
type Prediction = core.Prediction

// Tier and HierarchicalDB extend the model to tiered storage (the
// paper's future-work section).
type (
	Tier           = core.Tier
	HierarchicalDB = core.HierarchicalDB
)

// PaperSystem returns the paper's fitted constants with the optimized
// master (19 µs per message).
func PaperSystem() System { return core.PaperSystem() }

// PaperSlowSystem returns the paper's system before the serialization
// fix (150 µs per message).
func PaperSlowSystem() System { return core.PaperSlowSystem() }

// PaperDBModel returns Formula 6/7 verbatim.
func PaperDBModel() DBModel { return core.PaperDBModel() }

// ImbalanceRatio is Formula 1: expected relative overload of the most
// loaded of n nodes holding m keys.
func ImbalanceRatio(keys, nodes int) float64 { return core.ImbalanceRatio(keys, nodes) }

// MaxKeysPerNode is Formula 5: the high-probability maximum key count
// on any node.
func MaxKeysPerNode(keys, nodes int) float64 { return core.MaxKeysPerNode(keys, nodes) }

// --- The real cluster ------------------------------------------------------

// Cluster is an in-process multi-node store (one storage engine and
// server per node, connected by the in-process transport). It is
// elastic: AddNode and RemoveNode grow and shrink the ring under live
// traffic, streaming token ranges between nodes and flipping the
// topology epoch when the data is in place. Cluster.Repair runs an
// anti-entropy pass that converges every replica of every range to the
// per-cell last-write-wins winner, tombstones included.
type Cluster = cluster.Cluster

// Topology is the epoch-versioned token ring: an immutable membership
// snapshot whose AddNode/RemoveNode return a new topology plus the
// token ranges that changed owner.
type Topology = hashring.Topology

// NodeID identifies a cluster member on the ring.
type NodeID = hashring.NodeID

// RangeMove is one element of an ownership diff: copy the inclusive
// token range [Lo, Hi] from node From to node To.
type RangeMove = hashring.RangeMove

// RebalanceReport summarizes one AddNode/RemoveNode: moves, cells
// streamed and retired, stream and flip durations.
type RebalanceReport = cluster.RebalanceReport

// RepairReport summarizes one anti-entropy pass (Cluster.Repair /
// Client.RepairRange): ranges and replica pairs walked, digest probes,
// mismatched leaves and cells shipped to lagging replicas. A converged
// cluster reports zero cells shipped — the pass cost only digests.
type RepairReport = cluster.RepairReport

// Client routes operations by token ring and runs the master-style
// fan-out (CountAll).
type Client = cluster.Client

// ClusterOptions configures StartCluster beyond the node count.
type ClusterOptions = cluster.LocalOptions

// MasterOptions tunes fan-out queries (verbose master, log sink).
type MasterOptions = cluster.MasterOptions

// MasterResult is a fan-out query outcome with stage trace.
type MasterResult = cluster.MasterResult

// Cell is one clustering-key/value pair, stamped with the version of
// the write that produced it.
type Cell = row.Cell

// Version orders writes to one cell address: a (Seq, Node) hybrid
// counter stamped by the storage engine that accepted the write.
// Wherever two copies of a cell meet — replicas, rebalance streams,
// compactions — the higher version wins (last-write-wins).
type Version = row.Version

// Entry is one write addressed to a partition — the unit of the batched
// bulk-write path.
type Entry = row.Entry

// Batcher accumulates writes and ships them as replica-aware batched
// RPCs with a bounded per-node window of in-flight requests. Create one
// per writer goroutine with Client.NewBatcher.
type Batcher = cluster.Batcher

// BatcherOptions tunes batch flush thresholds and the async window.
type BatcherOptions = cluster.BatcherOptions

// GetKey addresses one cell for Client.MultiGet.
type GetKey = wire.GetKey

// MultiGetValue is one Client.MultiGet result.
type MultiGetValue = wire.MultiGetValue

// StorageOptions tunes each node's local engine. Notably Shards sets
// the engine's lock-stripe count (default 8): each shard runs its own
// memtable, WAL segments, SSTables and background flusher, so writes
// never wait on SSTable I/O and parallel readers don't contend on one
// lock. Shards: 1 restores the single-stripe layout for ablations.
// Sync selects the WAL fsync policy (SyncNever / SyncOnSeal /
// SyncAlways).
type StorageOptions = storage.Options

// SyncMode selects when WAL segments are fsynced.
type SyncMode = storage.SyncMode

// WAL fsync policies, in increasing durability (and cost) order.
const (
	SyncNever  = storage.SyncNever
	SyncOnSeal = storage.SyncOnSeal
	SyncAlways = storage.SyncAlways
)

// EngineStats is a storage engine's load snapshot: per-shard memtable
// backlog, SSTable counts, flushed bytes and background-work counters.
type EngineStats = storage.EngineStats

// Codec serializes wire messages; SlowCodec and FastCodec reproduce the
// Section V-B comparison.
type (
	Codec     = wire.Codec
	SlowCodec = wire.SlowCodec
	FastCodec = wire.FastCodec
)

// StartCluster boots an n-node in-process cluster with defaults
// (FastCodec, replication factor 1, WAL enabled).
func StartCluster(nodes int) (*Cluster, error) {
	return cluster.StartLocal(cluster.LocalOptions{Nodes: nodes})
}

// StartClusterWith boots a cluster with explicit options.
func StartClusterWith(opts ClusterOptions) (*Cluster, error) {
	return cluster.StartLocal(opts)
}

// --- The simulated prototype ----------------------------------------------

// SimConfig describes one simulated master-slave query (the Section V
// prototype under virtual time).
type SimConfig = master.Config

// SimResult carries a simulated run's measurements and stage trace.
type SimResult = master.Result

// Calibration holds per-component service times for the simulator.
type Calibration = master.Calibration

// Simulate runs one query on the discrete-event simulator.
func Simulate(cfg SimConfig) *SimResult { return master.Run(cfg) }

// PaperCalibration returns the paper's measured component costs;
// fastMaster selects the optimized master.
func PaperCalibration(fastMaster bool) Calibration { return master.PaperCalibration(fastMaster) }

// --- The case-study index ---------------------------------------------------

// D8Tree is the denormalized octree index over a key-value store.
type D8Tree = d8tree.Tree

// D8TreeOptions configures tree depth and read fan-out.
type D8TreeOptions = d8tree.Options

// Point and Box are the index's element and query region.
type (
	Point = d8tree.Point
	Box   = d8tree.Box
)

// KVStore is the substrate interface a D8Tree writes through.
type KVStore = d8tree.Store

// BatchKVStore is the batch-capable KVStore variant; both ClientStore
// and EngineStore satisfy it, so D8Tree.InsertBatch bulk-loads through
// the batched write path on either substrate.
type BatchKVStore = d8tree.BatchStore

// NewD8Tree binds a tree to any KVStore (a cluster client via
// ClientStore, or a local engine via EngineStore).
func NewD8Tree(store KVStore, opts D8TreeOptions) *D8Tree { return d8tree.New(store, opts) }

// clientStore adapts a cluster client to the KVStore interface. It also
// implements the batch-capable store variant, so D8Tree.InsertBatch
// ships bulk loads through the batched write path.
type clientStore struct{ c *Client }

func (s clientStore) Put(pk string, ck, value []byte) error { return s.c.Put(pk, ck, value) }
func (s clientStore) PutBatch(entries []row.Entry) error    { return s.c.PutBatch(entries) }
func (s clientStore) Scan(pk string, from, to []byte) ([]row.Cell, error) {
	return s.c.Scan(pk, from, to)
}

// ClientStore lets a D8Tree run over a cluster client.
func ClientStore(c *Client) KVStore { return clientStore{c: c} }

// engineStore adapts a local storage engine to the KVStore interface,
// batch path included (the engine group-commits a batch under one lock
// acquisition and one WAL write).
type engineStore struct{ e *storage.Engine }

func (s engineStore) Put(pk string, ck, value []byte) error { return s.e.Put(pk, ck, value) }
func (s engineStore) PutBatch(entries []row.Entry) error    { return s.e.PutBatch(entries) }
func (s engineStore) Scan(pk string, from, to []byte) ([]row.Cell, error) {
	return s.e.ScanPartition(pk, from, to)
}

// OpenEngine opens a standalone single-node engine (no cluster), useful
// for local indexing and the Figure 6/7 measurements.
func OpenEngine(opts StorageOptions) (*storage.Engine, error) { return storage.Open(opts) }

// EngineStore lets a D8Tree run over a local engine.
func EngineStore(e *storage.Engine) KVStore { return engineStore{e: e} }
