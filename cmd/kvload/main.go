// Command kvload is the standing workload lab: it drives a YCSB-style
// named mix against a cluster through a client-count saturation sweep,
// collects per-op latency into fixed-bucket histograms, and persists
// the run as BENCH_<mix>.json — the repo's perf trajectory. (The paper
// figures live in cmd/kvbench; this command measures the system.)
//
// Against an in-process cluster (default) or a self-hosted loopback
// TCP cluster:
//
//	kvload -mix hotspot -quick
//	kvload -mix read-heavy -nodes 4 -rf 2 -transport tcp
//
// Against a running deployment (-addr lists seed members; the ring is
// discovered from whichever one answers, as for cmd/kvstore):
//
//	kvload -mix update-heavy -addr host0:7070 -rf 2
//
// Validate persisted results (the CI artifact gate):
//
//	kvload -validate BENCH_read-heavy.json BENCH_hotspot.json
//
// Mixes: read-heavy (95/5), update-heavy (50/50), scan-heavy,
// hotspot (Zipfian, -theta), delete-churn. Each run preloads the
// keyspace through the batched write path, then runs the mix once per
// entry of -clients, each step for -duration.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"scalekv/internal/cluster"
	"scalekv/internal/transport"
	"scalekv/internal/wire"
	"scalekv/internal/workload"
)

func main() {
	var (
		mixName   = flag.String("mix", "", "workload mix: "+workload.MixNames())
		nodes     = flag.Int("nodes", 4, "cluster size for self-hosted modes")
		rf        = flag.Int("rf", 1, "replication factor")
		transp    = flag.String("transport", "inproc", "self-hosted cluster transport: inproc | tcp")
		addrs     = flag.String("addr", "", "comma-separated node addresses of a running cluster (overrides self-hosting)")
		clients   = flag.String("clients", "1,2,4,8", "comma-separated client-goroutine counts, one sweep step each")
		duration  = flag.Duration("duration", 5*time.Second, "measured duration per sweep step")
		keys      = flag.Int64("keys", 50_000, "partition-key count")
		cells     = flag.Int("cells", 4, "cells (clustering keys) per partition")
		valueSize = flag.Int("value", 128, "value bytes per cell")
		theta     = flag.Float64("theta", 0, "Zipfian skew override for skewed mixes (0 = mix default)")
		rate      = flag.Float64("rate", 0, "open-loop aggregate arrival rate in ops/sec; latency is measured from each op's scheduled arrival (0 = closed loop)")
		seed      = flag.Int64("seed", 42, "deterministic traffic seed")
		outDir    = flag.String("out", ".", "directory for BENCH_<mix>.json")
		gitRev    = flag.String("gitrev", "unknown", "git revision recorded in the result")
		date      = flag.String("date", "", "ISO date recorded in the result (default: today, UTC)")
		quick     = flag.Bool("quick", false, "CI-sized run: small keyspace, short steps (1,4 clients)")
		validate  = flag.Bool("validate", false, "validate BENCH files given as arguments and exit")
		compare   = flag.Bool("compare", false, "compare two BENCH files (baseline fresh) and exit 3 on regression")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional throughput/p99 regression for -compare")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kvload -mix <name> [flags]\n")
		fmt.Fprintf(os.Stderr, "       kvload -validate BENCH_*.json...\n")
		fmt.Fprintf(os.Stderr, "       kvload -compare baseline.json fresh.json\n")
		fmt.Fprintf(os.Stderr, "mixes: %s\n", workload.MixNames())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *validate {
		validateFiles(flag.Args())
		return
	}
	if *compare {
		compareFiles(flag.Args(), *tolerance)
		return
	}
	if *mixName == "" {
		flag.Usage()
		os.Exit(2)
	}
	mix, err := workload.MixByName(*mixName, *theta)
	if err != nil {
		die(err)
	}
	if *quick {
		*keys = 4000
		*valueSize = 64
		*duration = 1500 * time.Millisecond
		*clients = "1,4"
	}
	steps, err := parseClients(*clients)
	if err != nil {
		die(err)
	}
	if *date == "" {
		*date = time.Now().UTC().Format("2006-01-02")
	}

	cli, info, cleanup, err := connect(*addrs, *transp, *nodes, *rf)
	if err != nil {
		die(err)
	}
	defer cleanup()

	result := &workload.Result{
		Schema:  workload.SchemaVersion,
		Mix:     mix.Name,
		GitRev:  *gitRev,
		Date:    *date,
		Quick:   *quick,
		Cluster: info,
		Work: workload.WorkloadInfo{
			Keys: *keys, CellsPerKey: *cells, ValueSize: *valueSize,
			ReadPct: mix.Read, UpdatePct: mix.Update, ScanPct: mix.Scan, DeletePct: mix.Delete,
			Zipfian: mix.Zipfian, Theta: mix.Theta, Seed: *seed, Rate: *rate,
		},
	}

	// Preload every cell through the batched write path, so the
	// measured steps run against a populated store (reads hit data,
	// updates are overwrites) and the load rate itself lands in the
	// trajectory.
	ks := workload.NewKeyspace(*keys, *cells, *valueSize, *seed)
	fmt.Printf("kvload: %s on %d nodes (rf=%d, %s): loading %d cells...\n",
		mix.Name, info.Nodes, info.ReplicationFactor, info.Transport, ks.Cells())
	loadStart := time.Now()
	loaded, err := workload.LoadKeyspace(cli, ks, 256)
	if err != nil {
		die(fmt.Errorf("load: %w", err))
	}
	loadSec := time.Since(loadStart).Seconds()
	result.Load = &workload.LoadPhase{
		Cells: loaded, Seconds: loadSec, CellsPerSec: float64(loaded) / loadSec,
	}
	fmt.Printf("kvload: loaded %d cells in %.2fs (%.0f cells/sec)\n", loaded, loadSec, result.Load.CellsPerSec)

	for _, n := range steps {
		before := cli.Failovers.Load()
		res := workload.RunStep(cli, mix, ks, workload.StepConfig{
			Clients: n, Duration: *duration, Seed: *seed + int64(n), Rate: *rate,
		})
		step := res.ToStep(cli.Failovers.Load() - before)
		result.Steps = append(result.Steps, step)
		fmt.Printf("kvload: %3d clients: %8.0f ops/sec  p50 %6.0fµs  p95 %6.0fµs  p99 %6.0fµs  p99.9 %6.0fµs  max %.0fµs  (%d ops, %d errors, %d failovers)\n",
			n, step.OpsPerSec, step.Latency.P50, step.Latency.P95, step.Latency.P99,
			step.Latency.P999, step.Latency.Max, step.Ops, step.Errors, step.Failovers)
	}

	path := filepath.Join(*outDir, workload.BenchFileName(mix.Name))
	if err := result.WriteFile(path); err != nil {
		die(err)
	}
	fmt.Printf("kvload: wrote %s\n", path)
}

// connect builds the client for the selected mode: dial a running
// deployment (-addr), or self-host an in-process or loopback-TCP
// cluster via the StartLocal/StartTCP machinery.
func connect(addrList, transp string, nodes, rf int) (*cluster.Client, workload.ClusterInfo, func(), error) {
	if addrList != "" {
		// The address list is only a seed set: Connect discovers the real
		// ring (epoch, membership, rf) from whichever member answers, so
		// the flag no longer has to enumerate every node in ring order.
		seeds := strings.Split(addrList, ",")
		for i := range seeds {
			seeds[i] = strings.TrimSpace(seeds[i])
		}
		cli, err := cluster.Connect(seeds, cluster.ClientOptions{
			Codec:             wire.FastCodec{},
			ReplicationFactor: rf,
			Dialer: func(addr string) (*transport.Client, error) {
				conn, err := transport.DialTCP(addr, 0)
				if err != nil {
					return nil, err
				}
				return transport.NewClient(conn), nil
			},
		})
		if err != nil {
			return nil, workload.ClusterInfo{}, nil, err
		}
		info := workload.ClusterInfo{
			Nodes:             cli.Ring().Size(),
			ReplicationFactor: cli.ReplicationFactor(),
			Transport:         "remote",
		}
		return cli, info, func() { cli.Close() }, nil
	}

	opts := cluster.LocalOptions{Nodes: nodes, ReplicationFactor: rf}
	var (
		cl  *cluster.Cluster
		err error
	)
	switch transp {
	case "inproc":
		cl, err = cluster.StartLocal(opts)
	case "tcp":
		cl, err = cluster.StartTCP(opts)
	default:
		return nil, workload.ClusterInfo{}, nil, fmt.Errorf("unknown -transport %q (inproc | tcp)", transp)
	}
	if err != nil {
		return nil, workload.ClusterInfo{}, nil, err
	}
	info := workload.ClusterInfo{Nodes: nodes, ReplicationFactor: rf, Transport: transp}
	return cl.Client(), info, func() { cl.Close() }, nil
}

// validateFiles is the CI artifact gate: every file must parse and
// pass the schema invariants, or the process exits non-zero.
func validateFiles(paths []string) {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "kvload -validate: no files given")
		os.Exit(2)
	}
	failed := false
	for _, path := range paths {
		r, err := workload.ReadResultFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvload: INVALID %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("kvload: ok %s (%s, %d steps, rev %s, %s)\n", path, r.Mix, len(r.Steps), r.GitRev, r.Date)
	}
	if failed {
		os.Exit(1)
	}
}

// compareFiles diffs a fresh run against a committed baseline. Exit
// codes: 0 clean, 1 unreadable/incomparable files, 3 regression over
// tolerance — distinct from 1 so CI can report (not fail) on noise-
// prone hardware while still failing on broken inputs.
func compareFiles(paths []string, tolerance float64) {
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "kvload -compare: want exactly 2 files (baseline fresh)")
		os.Exit(2)
	}
	base, err := workload.ReadResultFile(paths[0])
	if err != nil {
		die(err)
	}
	fresh, err := workload.ReadResultFile(paths[1])
	if err != nil {
		die(err)
	}
	regs, err := workload.CompareResults(base, fresh, tolerance)
	if err != nil {
		die(err)
	}
	fmt.Printf("kvload: compare %s (rev %s) -> %s (rev %s), tolerance %.0f%%\n",
		paths[0], base.GitRev, paths[1], fresh.GitRev, tolerance*100)
	for _, f := range fresh.Steps {
		for _, b := range base.Steps {
			if b.Clients != f.Clients || b.Ops == 0 || f.Ops == 0 {
				continue
			}
			fmt.Printf("kvload: %3d clients: %8.0f -> %8.0f ops/sec (%+.1f%%)  p99 %6.0f -> %6.0f µs (%+.1f%%)\n",
				f.Clients, b.OpsPerSec, f.OpsPerSec, (f.OpsPerSec-b.OpsPerSec)/b.OpsPerSec*100,
				b.Latency.P99, f.Latency.P99, (f.Latency.P99-b.Latency.P99)/b.Latency.P99*100)
		}
	}
	if len(regs) == 0 {
		fmt.Println("kvload: no regressions over tolerance")
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "kvload: REGRESSION %s\n", r)
	}
	os.Exit(3)
}

func parseClients(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -clients entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "kvload:", err)
	os.Exit(1)
}
