// Command kvstore runs one store node over TCP, or acts as a client
// against a set of nodes.
//
// Server:
//
//	kvstore serve -addr :7070 -id 0 -dir ./data-0
//
// Client (node list defines the ring; order and count must match the
// server deployment):
//
//	kvstore -nodes host0:7070,host1:7070 put   <pk> <ck> <value>
//	kvstore -nodes host0:7070,host1:7070 get   <pk> <ck>
//	kvstore -nodes host0:7070,host1:7070 scan  <pk>
//	kvstore -nodes host0:7070,host1:7070 count <pk>
//
// Anti-entropy (admin-triggered, or periodic with -repair-every):
//
//	kvstore -nodes host0:7070,host1:7070 -rf 2 repair
//	kvstore -nodes host0:7070,host1:7070 -rf 2 -repair-every 30s repair
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scalekv/internal/cluster"
	"scalekv/internal/hashring"
	"scalekv/internal/transport"
	"scalekv/internal/wire"
)

func main() {
	if len(os.Args) >= 2 && os.Args[1] == "serve" {
		serve(os.Args[2:])
		return
	}
	client(os.Args[1:])
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":7070", "listen address")
	id := fs.Int("id", 0, "node id (ring position)")
	dir := fs.String("dir", "", "data directory (required)")
	parallelism := fs.Int("db-parallelism", 16, "concurrent database requests")
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "kvstore serve: -dir is required")
		os.Exit(2)
	}
	l, err := transport.ListenTCP(*addr, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
	node, err := cluster.StartNode(l, cluster.NodeOptions{
		ID:            hashring.NodeID(*id),
		Dir:           *dir,
		DBParallelism: *parallelism,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
	fmt.Printf("kvstore: node %d serving on %s, data in %s\n", *id, l.Addr(), *dir)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("kvstore: shutting down")
	if err := node.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
}

func client(args []string) {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	nodesFlag := fs.String("nodes", "127.0.0.1:7070", "comma-separated node addresses, ring order")
	rf := fs.Int("rf", 1, "replication factor for writes")
	repairEvery := fs.Duration("repair-every", 0, "rerun `repair` on this interval until interrupted (0 = once)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: kvstore [-nodes a,b,c] <put|get|scan|count|repair> args...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		os.Exit(2)
	}

	addrs := strings.Split(*nodesFlag, ",")
	ring := hashring.New(len(addrs), 64)
	conns := make(map[hashring.NodeID]*transport.Client, len(addrs))
	book := make(map[hashring.NodeID]string, len(addrs))
	for i, addr := range addrs {
		addr = strings.TrimSpace(addr)
		conn, err := transport.DialTCP(addr, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvstore: dial node %d: %v\n", i, err)
			os.Exit(1)
		}
		conns[hashring.NodeID(i)] = transport.NewClient(conn)
		book[hashring.NodeID(i)] = addr
	}
	cli := cluster.NewClient(ring, conns, cluster.ClientOptions{
		Codec: wire.FastCodec{}, ReplicationFactor: *rf,
		// A dialer and address book let the client follow topology
		// changes it learns from ring refreshes (the periodic repair
		// daemon depends on this to reach members that joined after
		// boot).
		Dialer: func(addr string) (*transport.Client, error) {
			conn, err := transport.DialTCP(addr, 0)
			if err != nil {
				return nil, err
			}
			return transport.NewClient(conn), nil
		},
		Addrs: book,
	})
	defer cli.Close()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
	need := func(n int, usage string) {
		if len(rest) != n+1 {
			fmt.Fprintf(os.Stderr, "usage: kvstore %s\n", usage)
			os.Exit(2)
		}
	}
	switch rest[0] {
	case "put":
		need(3, "put <pk> <ck> <value>")
		if err := cli.Put(rest[1], []byte(rest[2]), []byte(rest[3])); err != nil {
			die(err)
		}
		fmt.Println("OK")
	case "get":
		need(2, "get <pk> <ck>")
		v, found, err := cli.Get(rest[1], []byte(rest[2]))
		if err != nil {
			die(err)
		}
		if !found {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		fmt.Printf("%s\n", v)
	case "scan":
		need(1, "scan <pk>")
		cells, err := cli.Scan(rest[1], nil, nil)
		if err != nil {
			die(err)
		}
		for _, c := range cells {
			fmt.Printf("%q\t%q\n", c.CK, c.Value)
		}
		fmt.Printf("(%d cells)\n", len(cells))
	case "count":
		need(1, "count <pk>")
		counts, total, err := cli.Count(rest[1])
		if err != nil {
			die(err)
		}
		fmt.Printf("elements: %d\n", total)
		for ty, n := range counts {
			fmt.Printf("  type %d: %d\n", ty, n)
		}
	case "repair":
		// Anti-entropy pass: converge every replica of every range to
		// the per-cell last-write-wins winner. One-shot by default; with
		// -repair-every it loops until interrupted. Run it often enough
		// that every delete is repaired to all replicas before its
		// tombstone is compacted away on the replicas that saw it —
		// otherwise a replica that was down for the delete can feed the
		// old value back in (Cassandra's gc_grace discipline).
		need(0, "repair")
		if *rf < 2 {
			// At rf=1 no range has a second owner, so the pass would
			// no-op while printing a success-looking report.
			fmt.Fprintln(os.Stderr, "kvstore repair: pass -rf 2 (or higher) — there is nothing to reconcile at rf 1")
			os.Exit(2)
		}
		runOnce := func() error {
			start := time.Now()
			rep, err := cli.RepairAll(*rf)
			if err != nil {
				return err
			}
			fmt.Printf("repair: %d ranges, %d pairs, %d digests, %d leaf mismatches, %d cells shipped (%d legacy skipped) in %s\n",
				rep.Ranges, rep.Pairs, rep.DigestRPCs, rep.LeafMismatches, rep.CellsShipped, rep.SkippedLegacy, time.Since(start).Round(time.Millisecond))
			return nil
		}
		if *repairEvery <= 0 {
			if err := runOnce(); err != nil {
				die(err)
			}
			return
		}
		// Periodic mode is a standing daemon: a transient pass failure
		// (a node mid-restart) is logged and retried on the next tick,
		// never fatal — exiting would silently end anti-entropy.
		if err := runOnce(); err != nil {
			fmt.Fprintln(os.Stderr, "kvstore repair:", err)
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		tick := time.NewTicker(*repairEvery)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if err := runOnce(); err != nil {
					fmt.Fprintln(os.Stderr, "kvstore repair:", err)
				}
			case <-sig:
				return
			}
		}
	default:
		fs.Usage()
		os.Exit(2)
	}
}
