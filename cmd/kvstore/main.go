// Command kvstore runs one store node over TCP, inspects a running
// cluster, or acts as a client against one.
//
// Bootstrap a fresh single-node cluster, then grow it — each new node
// joins through any existing member and the ring rebalances live:
//
//	kvstore serve -addr :7070 -dir ./data-0 -rf 2
//	kvstore serve -addr :7071 -dir ./data-1 -join 127.0.0.1:7070
//	kvstore serve -addr :7072 -dir ./data-2 -join 127.0.0.1:7070
//
// Every node persists the membership it learns (a `topology` file in
// its data directory), so a restart needs no -join and no member list:
//
//	kvstore serve -addr :7071 -id 1 -dir ./data-1
//
// Inspect membership, epochs and peer health through any member:
//
//	kvstore status -nodes 127.0.0.1:7070
//
// Client commands discover the ring from any member (no hand-written
// member list to keep in sync):
//
//	kvstore -nodes 127.0.0.1:7070 put   <pk> <ck> <value>
//	kvstore -nodes 127.0.0.1:7070 get   <pk> <ck>
//	kvstore -nodes 127.0.0.1:7070 scan  <pk>
//	kvstore -nodes 127.0.0.1:7070 count <pk>
//	kvstore -nodes 127.0.0.1:7070 repair
//
// Anti-entropy is self-scheduled by the nodes (serve -repair-interval);
// the client `repair` verb remains for one-shot admin passes.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"scalekv/internal/cluster"
	"scalekv/internal/hashring"
	"scalekv/internal/transport"
	"scalekv/internal/wire"
)

func main() {
	if len(os.Args) >= 2 {
		switch os.Args[1] {
		case "serve":
			serve(os.Args[2:])
			return
		case "status":
			status(os.Args[2:])
			return
		}
	}
	client(os.Args[1:])
}

func tcpDial(addr string) (*transport.Client, error) {
	conn, err := transport.DialTCP(addr, 0)
	if err != nil {
		return nil, err
	}
	return transport.NewClient(conn), nil
}

// advertiseAddr picks the address peers dial: the -advertise override,
// or the listen address with a wildcard host rewritten to loopback
// (":7070" is dialable by nobody; "127.0.0.1:7070" at least works for
// single-host deployments, and multi-host ones pass -advertise).
func advertiseAddr(listen, override string) string {
	if override != "" {
		return override
	}
	host, port, err := net.SplitHostPort(listen)
	if err != nil {
		return listen
	}
	switch host {
	case "", "0.0.0.0", "::", "[::]":
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":7070", "listen address")
	id := fs.Int("id", -1, "node id; -1 picks the next free id when joining, 0 when bootstrapping (restarts must pass their old id)")
	dir := fs.String("dir", "", "data directory (required)")
	join := fs.String("join", "", "address of any existing member to join through (empty = bootstrap or resume)")
	advertise := fs.String("advertise", "", "address peers dial to reach this node (default: listen address, wildcard host rewritten to 127.0.0.1)")
	rf := fs.Int("rf", 1, "replication factor when bootstrapping a fresh cluster (joins and resumes adopt the ring's)")
	vnodes := fs.Int("vnodes", 64, "virtual nodes per member when bootstrapping a fresh cluster")
	parallelism := fs.Int("db-parallelism", 16, "concurrent database requests")
	probeInterval := fs.Duration("probe-interval", time.Second, "peer liveness probe interval (0 = off)")
	repairInterval := fs.Duration("repair-interval", 5*time.Minute, "self-scheduled anti-entropy interval, jittered (0 = off)")
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "kvstore serve: -dir is required")
		os.Exit(2)
	}
	l, err := transport.ListenTCP(*addr, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
	adv := advertiseAddr(l.Addr(), *advertise)
	opts := cluster.NodeOptions{
		ID:                hashring.NodeID(*id),
		Dir:               *dir,
		DBParallelism:     *parallelism,
		ReplicationFactor: *rf,
		Dialer:            tcpDial,
		AdvertiseAddr:     adv,
		ProbeInterval:     *probeInterval,
		RepairInterval:    *repairInterval,
	}

	var node *cluster.Node
	if *join != "" {
		var jr *wire.JoinResponse
		node, jr, err = cluster.JoinRing(l, opts, *join)
		if err == nil {
			fmt.Printf("kvstore: joined at epoch %d: %d ranges moved, %d cells streamed in %d pages, %d retired\n",
				jr.Epoch, jr.Moves, jr.CellsStreamed, jr.Pages, jr.CellsRetired)
			if jr.RetireErr != "" {
				fmt.Fprintf(os.Stderr, "kvstore: retirement incomplete (repair will reconcile): %s\n", jr.RetireErr)
			}
		}
	} else {
		// Bootstrap or resume. The single-member epoch-1 ring below is
		// only the fallback: a persisted topology file at a higher epoch
		// wins inside StartNode, so a restarted member comes back with
		// the membership it last flipped to.
		if opts.ID < 0 {
			opts.ID = 0
		}
		opts.Topology = hashring.FromNodes(1, []hashring.NodeID{opts.ID}, *vnodes)
		opts.Addrs = map[hashring.NodeID]string{opts.ID: adv}
		node, err = cluster.StartNode(l, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
	topo := node.Topology()
	fmt.Printf("kvstore: node %d serving on %s (advertised %s), epoch %d, %d members, data in %s\n",
		node.ID(), l.Addr(), adv, topo.Epoch(), topo.Size(), *dir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	// Graceful departure: announce the leave so peers flip this node's
	// health immediately instead of waiting out the suspicion window.
	fmt.Println("kvstore: shutting down")
	if err := node.Shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
}

// callNode sends one request to one address over a throwaway
// connection — status is a diagnostic, it should not disturb the
// cluster's connection state.
func callNode(addr string, req wire.Message) (wire.Message, error) {
	conn, err := tcpDial(addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	codec := wire.FastCodec{}
	payload, err := codec.Marshal(req)
	if err != nil {
		return nil, err
	}
	raw, err := conn.Call(payload)
	if err != nil {
		return nil, err
	}
	return codec.Unmarshal(raw)
}

func status(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	nodesFlag := fs.String("nodes", "127.0.0.1:7070", "comma-separated addresses of any members (first reachable one supplies the ring)")
	fs.Parse(args)

	var rs *wire.RingStateResponse
	var via string
	for _, seed := range strings.Split(*nodesFlag, ",") {
		seed = strings.TrimSpace(seed)
		resp, err := callNode(seed, &wire.RingStateRequest{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvstore status: %s unreachable: %v\n", seed, err)
			continue
		}
		if r, ok := resp.(*wire.RingStateResponse); ok && r.ErrMsg == "" {
			rs, via = r, seed
			break
		}
	}
	if rs == nil {
		fmt.Fprintln(os.Stderr, "kvstore status: no member answered a ring-state request")
		os.Exit(1)
	}
	fmt.Printf("ring (via %s): epoch %d, %d members, rf %d, %d vnodes\n",
		via, rs.Epoch, len(rs.Nodes), rs.RF, rs.Vnodes)

	members := append([]wire.NodeAddr(nil), rs.Nodes...)
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	for _, m := range members {
		resp, err := callNode(m.Addr, &wire.NodeStatsRequest{})
		if err != nil {
			fmt.Printf("node %d @ %s: DOWN (%v)\n", m.ID, m.Addr, err)
			continue
		}
		st, ok := resp.(*wire.NodeStatsResponse)
		if !ok {
			fmt.Printf("node %d @ %s: unexpected reply %T\n", m.ID, m.Addr, resp)
			continue
		}
		var memBytes uint64
		var tables uint32
		for _, s := range st.Shards {
			memBytes += s.MemtableBytes
			tables += s.SSTables
		}
		fmt.Printf("node %d @ %s: epoch %d, memtable %d KiB, %d sstables, %d flushes, dials %d (+%d redials)\n",
			m.ID, m.Addr, st.Epoch, memBytes/1024, tables, st.FlushCount, st.DialCount, st.RedialCount)
		peers := append([]wire.PeerStat(nil), st.Peers...)
		sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
		for _, p := range peers {
			state := "up"
			if !p.Up {
				state = "DOWN"
			}
			fmt.Printf("  peer %d: %-4s suspicion %d, %s in state\n",
				p.ID, state, p.Suspicion, (time.Duration(p.SinceMillis) * time.Millisecond).Round(time.Second))
		}
	}
}

func client(args []string) {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	nodesFlag := fs.String("nodes", "127.0.0.1:7070", "comma-separated addresses of any members (seeds for ring discovery)")
	rf := fs.Int("rf", 0, "replication factor for writes (0 = adopt the ring's)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: kvstore [-nodes a,b,c] <put|get|scan|count|repair> args...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		os.Exit(2)
	}

	seeds := strings.Split(*nodesFlag, ",")
	for i := range seeds {
		seeds[i] = strings.TrimSpace(seeds[i])
	}
	// Connect learns the real ring (epoch, members, rf) from whichever
	// seed answers — the member list no longer has to be complete or
	// ordered, any one live address will do.
	cli, err := cluster.Connect(seeds, cluster.ClientOptions{
		Codec:             wire.FastCodec{},
		ReplicationFactor: *rf,
		Dialer:            tcpDial,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
	defer cli.Close()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
	need := func(n int, usage string) {
		if len(rest) != n+1 {
			fmt.Fprintf(os.Stderr, "usage: kvstore %s\n", usage)
			os.Exit(2)
		}
	}
	switch rest[0] {
	case "put":
		need(3, "put <pk> <ck> <value>")
		if err := cli.Put(rest[1], []byte(rest[2]), []byte(rest[3])); err != nil {
			die(err)
		}
		fmt.Println("OK")
	case "get":
		need(2, "get <pk> <ck>")
		v, found, err := cli.Get(rest[1], []byte(rest[2]))
		if err != nil {
			die(err)
		}
		if !found {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		fmt.Printf("%s\n", v)
	case "scan":
		need(1, "scan <pk>")
		cells, err := cli.Scan(rest[1], nil, nil)
		if err != nil {
			die(err)
		}
		for _, c := range cells {
			fmt.Printf("%q\t%q\n", c.CK, c.Value)
		}
		fmt.Printf("(%d cells)\n", len(cells))
	case "count":
		need(1, "count <pk>")
		counts, total, err := cli.Count(rest[1])
		if err != nil {
			die(err)
		}
		fmt.Printf("elements: %d\n", total)
		for ty, n := range counts {
			fmt.Printf("  type %d: %d\n", ty, n)
		}
	case "repair":
		// One-shot admin anti-entropy pass. Steady-state convergence is
		// the nodes' own job now (serve -repair-interval); this verb is
		// for forcing a pass after an incident, before the gc_grace
		// window closes on any tombstone a down replica missed.
		need(0, "repair")
		erf := cli.ReplicationFactor()
		if erf < 2 {
			// At rf=1 no range has a second owner, so the pass would
			// no-op while printing a success-looking report.
			fmt.Fprintln(os.Stderr, "kvstore repair: the ring runs at rf 1 — there is nothing to reconcile")
			os.Exit(2)
		}
		start := time.Now()
		rep, err := cli.RepairAll(erf)
		if err != nil {
			die(err)
		}
		fmt.Printf("repair: %d ranges, %d pairs, %d digests, %d leaf mismatches, %d cells shipped (%d legacy skipped) in %s\n",
			rep.Ranges, rep.Pairs, rep.DigestRPCs, rep.LeafMismatches, rep.CellsShipped, rep.SkippedLegacy, time.Since(start).Round(time.Millisecond))
	default:
		fs.Usage()
		os.Exit(2)
	}
}
