// Command kvstore runs one store node over TCP, or acts as a client
// against a set of nodes.
//
// Server:
//
//	kvstore serve -addr :7070 -id 0 -dir ./data-0
//
// Client (node list defines the ring; order and count must match the
// server deployment):
//
//	kvstore -nodes host0:7070,host1:7070 put   <pk> <ck> <value>
//	kvstore -nodes host0:7070,host1:7070 get   <pk> <ck>
//	kvstore -nodes host0:7070,host1:7070 scan  <pk>
//	kvstore -nodes host0:7070,host1:7070 count <pk>
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"scalekv/internal/cluster"
	"scalekv/internal/hashring"
	"scalekv/internal/transport"
	"scalekv/internal/wire"
)

func main() {
	if len(os.Args) >= 2 && os.Args[1] == "serve" {
		serve(os.Args[2:])
		return
	}
	client(os.Args[1:])
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":7070", "listen address")
	id := fs.Int("id", 0, "node id (ring position)")
	dir := fs.String("dir", "", "data directory (required)")
	parallelism := fs.Int("db-parallelism", 16, "concurrent database requests")
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "kvstore serve: -dir is required")
		os.Exit(2)
	}
	l, err := transport.ListenTCP(*addr, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
	node, err := cluster.StartNode(l, cluster.NodeOptions{
		ID:            hashring.NodeID(*id),
		Dir:           *dir,
		DBParallelism: *parallelism,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
	fmt.Printf("kvstore: node %d serving on %s, data in %s\n", *id, l.Addr(), *dir)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("kvstore: shutting down")
	if err := node.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
}

func client(args []string) {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	nodesFlag := fs.String("nodes", "127.0.0.1:7070", "comma-separated node addresses, ring order")
	rf := fs.Int("rf", 1, "replication factor for writes")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: kvstore [-nodes a,b,c] <put|get|scan|count> args...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		os.Exit(2)
	}

	addrs := strings.Split(*nodesFlag, ",")
	ring := hashring.New(len(addrs), 64)
	conns := make(map[hashring.NodeID]*transport.Client, len(addrs))
	for i, addr := range addrs {
		conn, err := transport.DialTCP(strings.TrimSpace(addr), 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvstore: dial node %d: %v\n", i, err)
			os.Exit(1)
		}
		conns[hashring.NodeID(i)] = transport.NewClient(conn)
	}
	cli := cluster.NewClient(ring, conns, cluster.ClientOptions{
		Codec: wire.FastCodec{}, ReplicationFactor: *rf,
	})
	defer cli.Close()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
	need := func(n int, usage string) {
		if len(rest) != n+1 {
			fmt.Fprintf(os.Stderr, "usage: kvstore %s\n", usage)
			os.Exit(2)
		}
	}
	switch rest[0] {
	case "put":
		need(3, "put <pk> <ck> <value>")
		if err := cli.Put(rest[1], []byte(rest[2]), []byte(rest[3])); err != nil {
			die(err)
		}
		fmt.Println("OK")
	case "get":
		need(2, "get <pk> <ck>")
		v, found, err := cli.Get(rest[1], []byte(rest[2]))
		if err != nil {
			die(err)
		}
		if !found {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		fmt.Printf("%s\n", v)
	case "scan":
		need(1, "scan <pk>")
		cells, err := cli.Scan(rest[1], nil, nil)
		if err != nil {
			die(err)
		}
		for _, c := range cells {
			fmt.Printf("%q\t%q\n", c.CK, c.Value)
		}
		fmt.Printf("(%d cells)\n", len(cells))
	case "count":
		need(1, "count <pk>")
		counts, total, err := cli.Count(rest[1])
		if err != nil {
			die(err)
		}
		fmt.Printf("elements: %d\n", total)
		for ty, n := range counts {
			fmt.Printf("  type %d: %d\n", ty, n)
		}
	default:
		fs.Usage()
		os.Exit(2)
	}
}
