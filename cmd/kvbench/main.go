// Command kvbench regenerates every figure of the paper's evaluation
// — the reproduction record, and only that. For benchmarks of the
// system itself (YCSB-style mixes, saturation sweeps, latency
// percentiles, the persisted BENCH_*.json trajectory) use cmd/kvload.
//
// Usage:
//
//	kvbench [flags] <experiment>...
//	kvbench all
//
// Experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
// codecs. Each prints the same series the paper plots, plus notes
// comparing against the paper's reported numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scalekv/internal/figures"
)

func main() {
	seed := flag.Int64("seed", 42, "seed for placement and service noise")
	trials := flag.Int("trials", 100000, "Monte-Carlo trials for fig3")
	tsv := flag.Bool("tsv", false, "emit tab-separated values instead of aligned tables")
	outDir := flag.String("out", "", "also write each table as <out>/<id>.tsv")
	quick := flag.Bool("quick", false, "shrink the real-engine experiments (fig6/fig7) for fast runs")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kvbench [flags] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: %s profile all\n", strings.Join(order, " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	for _, name := range args {
		if name == "profile" {
			// The Figure 4 picture itself: ASCII busy/idle segments.
			fmt.Print(figures.Fig4Profiles(*seed, 100))
			continue
		}
		tab, err := run(name, *seed, *trials, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *tsv {
			fmt.Print(tab.TSV())
		} else {
			fmt.Println(tab.Render())
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "kvbench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, tab.ID+".tsv")
			if err := os.WriteFile(path, []byte(tab.TSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "kvbench:", err)
				os.Exit(1)
			}
		}
	}
}

var order = []string{
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
	"fig7", "fig8", "fig9", "fig10", "fig11", "codecs",
}

func run(name string, seed int64, trials int, quick bool) (*figures.Table, error) {
	switch name {
	case "fig1":
		return figures.Fig1(seed), nil
	case "fig2":
		return figures.Fig2(seed), nil
	case "fig3":
		return figures.Fig3(seed, trials), nil
	case "fig4":
		return figures.Fig4(seed), nil
	case "fig5":
		return figures.Fig5(seed), nil
	case "fig6":
		opts := figures.Fig6Options{Seed: seed}
		if quick {
			opts = figures.Fig6Options{Seed: seed, MaxRow: 4000, Strata: 8, PerStratum: 3, Reps: 2}
		}
		return figures.Fig6(opts)
	case "fig7":
		opts := figures.Fig7Options{Seed: seed}
		if quick {
			opts = figures.Fig7Options{Seed: seed, MaxRow: 4000, Strata: 5, PerStratum: 4, TaskFactor: 4}
		}
		return figures.Fig7(opts)
	case "fig8":
		return figures.Fig8(seed), nil
	case "fig9":
		return figures.Fig9(), nil
	case "fig10":
		return figures.Fig10(), nil
	case "fig11":
		return figures.Fig11(), nil
	case "codecs":
		return figures.Codecs(), nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
}
