// Command kvmodel is the interactive side of the paper's Section VII:
// it answers design questions against the analytical model.
//
// Usage:
//
//	kvmodel predict   -elements 1000000 -keys 4000 -nodes 16
//	kvmodel optimal   -elements 1000000 -nodes 16
//	kvmodel sweep     -elements 1000000 -maxnodes 128
//	kvmodel imbalance -keys 200 -nodes 10
//	kvmodel limits    -elements 1000000
//	kvmodel hierarchy -workingset 300
//
// All verbs accept -slow to use the pre-optimization master (150 µs per
// message) instead of the optimized one (19 µs).
package main

import (
	"flag"
	"fmt"
	"os"

	"scalekv/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	verb := os.Args[1]
	fs := flag.NewFlagSet(verb, flag.ExitOnError)
	elements := fs.Int("elements", 1_000_000, "total elements in the query")
	keys := fs.Int("keys", 4000, "partition count")
	nodes := fs.Int("nodes", 16, "cluster size")
	maxNodes := fs.Int("maxnodes", 128, "sweep upper bound")
	slow := fs.Bool("slow", false, "use the unoptimized master (150us/msg)")
	workingSet := fs.Int("workingset", 64, "working set size in GB (hierarchy verb)")
	gc := fs.Float64("gc", 0, "GC inflation fraction (e.g. 0.12)")
	fs.Parse(os.Args[2:])

	sys := core.PaperSystem()
	if *slow {
		sys = core.PaperSlowSystem()
	}
	sys.GCFraction = *gc

	switch verb {
	case "predict":
		p := sys.Predict(*elements, *keys, *nodes)
		fmt.Println(p)
		fmt.Printf("  key_max (Formula 5) = %.1f of %d keys\n", p.KeysMax, p.Keys)
		fmt.Printf("  balanced slave time = %.1f ms (imbalance costs %.1f ms)\n",
			p.BalancedMs, p.SlaveMs-p.BalancedMs)
	case "optimal":
		k, p := sys.OptimalKeys(*elements, *nodes, 100, 100_000)
		fmt.Printf("optimal partitions for %d elements on %d nodes: %d\n", *elements, *nodes, k)
		fmt.Println(" ", p)
	case "sweep":
		fmt.Printf("%8s %12s %12s %12s %12s  %s\n",
			"nodes", "opt_keys", "master_ms", "slave_ms", "total_ms", "bottleneck")
		for n := 1; n <= *maxNodes; n *= 2 {
			k, p := sys.OptimalKeys(*elements, n, 100, 100_000)
			fmt.Printf("%8d %12d %12.1f %12.1f %12.1f  %s\n",
				n, k, p.MasterMs, p.SlaveMs, p.TotalMs, p.Bottleneck)
		}
	case "imbalance":
		p := core.ImbalanceRatio(*keys, *nodes)
		fmt.Printf("Formula 1: %d keys on %d nodes -> most loaded node gets %.1f%% more than average\n",
			*keys, *nodes, p*100)
		fmt.Printf("Formula 5: expected max keys on one node = %.1f (mean %.1f)\n",
			core.MaxKeysPerNode(*keys, *nodes), float64(*keys)/float64(*nodes))
	case "limits":
		cross := sys.MasterLimit(*elements, 100, 100_000, *maxNodes)
		if cross == 0 {
			fmt.Printf("random distribution: master is not the bottleneck up to %d nodes\n", *maxNodes)
		} else {
			fmt.Printf("random distribution: master becomes the bottleneck at ~%d nodes (paper: ~70)\n", cross)
		}
		rs := sys.ReplicaSelectionLimit(250, 16)
		fmt.Printf("replica selection (16 in flight per node, 250-element rows): ~%d nodes (paper: ~32)\n", rs)
	case "arch":
		fmt.Printf("master-slave versus peer-to-peer at each one's optimal partitioning:\n")
		fmt.Printf("%8s %16s %16s  %s\n", "nodes", "master-slave_ms", "peer-to-peer_ms", "winner")
		for n := 1; n <= *maxNodes; n *= 2 {
			_, ms := sys.OptimalKeys(*elements, n, 100, 100_000)
			// P2P evaluated at its own optimal partition count: without
			// a central sender it can afford many more, smaller keys.
			best := ms.TotalMs * 10
			for k := 100; k <= 100_000; k += k/50 + 1 {
				if p := sys.PredictP2P(*elements, k, n); p.TotalMs < best {
					best = p.TotalMs
				}
			}
			winner := "master-slave"
			if best < ms.TotalMs*0.98 {
				winner = "peer-to-peer"
			}
			fmt.Printf("%8d %16.1f %16.1f  %s\n", n, ms.TotalMs, best, winner)
		}
		cross := sys.ArchitectureCrossover(*elements, 100, 100_000, *maxNodes)
		if cross == 0 {
			fmt.Printf("no crossover up to %d nodes: the master never binds\n", *maxNodes)
		} else {
			fmt.Printf("peer-to-peer wins from ~%d nodes (where the single master binds)\n", cross)
		}
	case "hierarchy":
		tiers := core.KNLTiers()
		h := core.HierarchicalDB{Base: sys.DB, Tiers: tiers,
			WorkingSetBytes: int64(*workingSet) << 30}
		shares := h.TierShares()
		fmt.Printf("working set %d GB across KNL-style tiers:\n", *workingSet)
		for i, tier := range tiers {
			fmt.Printf("  %-7s factor %5.1fx share %5.1f%%\n",
				tier.Name, tier.LatencyFactor, shares[i]*100)
		}
		fmt.Printf("effective DB slowdown: %.2fx\n", h.EffectiveFactor())
		tiered := sys.WithHierarchy(tiers, int64(*workingSet)<<30)
		k, p := tiered.OptimalKeys(*elements, *nodes, 100, 100_000)
		fmt.Printf("tiered optimum on %d nodes: %d keys, %.1f ms\n", *nodes, k, p.TotalMs)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: kvmodel <verb> [flags]
verbs:
  predict    evaluate Formula 2 for one configuration
  optimal    find the partition count minimizing predicted time
  sweep      optimizer sweep over cluster sizes
  imbalance  Formulas 1 and 5 for a key/node combination
  limits     single-master scalability limits (Section VII)
  arch       master-slave versus peer-to-peer crossover (Section I trade-off)
  hierarchy  tiered-storage extension (Section IX future work)
run "kvmodel <verb> -h" for flags`)
}
