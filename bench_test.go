package scalekv

// One benchmark per figure of the paper's evaluation, plus the ablation
// benches DESIGN.md calls out. Run all of them with
//
//	go test -bench=. -benchmem
//
// Figure benches report the experiment's headline quantity as a custom
// metric so `go test -bench` output doubles as the reproduction record.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scalekv/internal/cluster"
	"scalekv/internal/figures"
	"scalekv/internal/master"
	"scalekv/internal/storage"
	"scalekv/internal/wire"
)

// BenchmarkFig1DataModelScalability regenerates Figure 1: the three
// data models on 1-16 nodes under the slow master.
func BenchmarkFig1DataModelScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := figures.Fig1(int64(i))
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig2OpsPerNode regenerates Figure 2: operations per node
// versus sub-query time for the coarse workload on 16 nodes.
func BenchmarkFig2OpsPerNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Fig2(int64(i))
	}
}

// BenchmarkFig3MaxLoadDensity regenerates Figure 3: the brute-force
// probability density of the most loaded node (100 keys, 16 nodes).
func BenchmarkFig3MaxLoadDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Fig3(int64(i), 100000)
	}
}

// BenchmarkFig4StageProfiles regenerates Figure 4: stage profiles of
// medium- versus fine-grained under the slow master.
func BenchmarkFig4StageProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Fig4(int64(i))
	}
}

// BenchmarkFig5OptimizedMaster regenerates Figure 5: the scaling sweep
// after the serialization fix.
func BenchmarkFig5OptimizedMaster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Fig5(int64(i))
	}
}

// BenchmarkFig6ResponseVsRowSize regenerates Figure 6 on the real
// storage engine (stratified row sizes, piecewise fit around the 64KB
// column-index break).
func BenchmarkFig6ResponseVsRowSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		if _, err := figures.Fig6(figures.Fig6Options{
			Dir: dir, MaxRow: 6000, Strata: 10, PerStratum: 3, Reps: 2, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7ParallelSpeedup regenerates Figure 7 on the real engine:
// best parallel speed-up per row-size stratum with the log refit.
func BenchmarkFig7ParallelSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		if _, err := figures.Fig7(figures.Fig7Options{
			Dir: dir, MaxRow: 4000, Strata: 5, PerStratum: 4, TaskFactor: 4, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8ModelValidation regenerates Figure 8: simulated versus
// predicted times (±GC correction).
func BenchmarkFig8ModelValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Fig8(int64(i))
	}
}

// BenchmarkFig9Optimizer regenerates Figure 9: optimal partition count
// per cluster size.
func BenchmarkFig9Optimizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Fig9()
	}
}

// BenchmarkFig10LossDecomposition regenerates Figure 10: loss versus
// ideal scalability split into imbalance and efficiency.
func BenchmarkFig10LossDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figures.Fig10()
	}
}

// BenchmarkFig11MasterLimit regenerates Figure 11: the single-master
// crossover near 70 nodes.
func BenchmarkFig11MasterLimit(b *testing.B) {
	var crossover int
	for i := 0; i < b.N; i++ {
		tab := figures.Fig11()
		crossover = len(tab.Rows)
	}
	_ = crossover
}

// --- Section V-B text numbers ------------------------------------------------

// BenchmarkCodecSlow measures the Java-like reflective codec
// (paper: 150 µs/message on the JVM).
func BenchmarkCodecSlow(b *testing.B) { benchCodec(b, wire.SlowCodec{}) }

// BenchmarkCodecFast measures the Kryo-like registered codec
// (paper: 19 µs/message).
func BenchmarkCodecFast(b *testing.B) { benchCodec(b, wire.FastCodec{}) }

func benchCodec(b *testing.B, c wire.Codec) {
	msg := &wire.CountRequest{QueryID: 7, Seq: 1234, PK: "cube-L4-3-7-1"}
	b.ReportAllocs()
	var bytes int
	for i := 0; i < b.N; i++ {
		data, err := c.Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		bytes = len(data)
		if _, err := c.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(bytes), "bytes/msg")
}

// --- Ablations (DESIGN.md section 5) -----------------------------------------

// BenchmarkColumnIndexOn/Off ablates the Figure 6 mechanism: a deep
// slice of a large partition with and without the column index.
func BenchmarkColumnIndexOn(b *testing.B)  { benchColumnIndex(b, 0) }
func BenchmarkColumnIndexOff(b *testing.B) { benchColumnIndex(b, -1) }

func benchColumnIndex(b *testing.B, columnIndexSize int) {
	e, err := storage.Open(storage.Options{
		Dir: b.TempDir(), DisableWAL: true, FlushThreshold: 1 << 30,
		ColumnIndexSize: columnIndexSize,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	val := make([]byte, 38)
	for c := 0; c < 20000; c++ {
		e.Put("big", []byte(fmt.Sprintf("%06d", c)), val)
	}
	e.Flush()
	from, to := []byte("019000"), []byte("019100")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := e.ScanPartition("big", from, to)
		if err != nil || len(cells) != 100 {
			b.Fatalf("bad slice: %d cells, %v", len(cells), err)
		}
	}
}

// BenchmarkPlacementSingleChoice/TwoChoice ablate the related-work
// placement policies via the simulated prototype: the reported metric is
// the measured imbalance, the quantity Formula 1 bounds.
func BenchmarkPlacementSingleChoice(b *testing.B) {
	benchPlacement(b, master.PlacementSingleChoice)
}

// BenchmarkPlacementTwoChoice is the power-of-two-choices counterpart.
func BenchmarkPlacementTwoChoice(b *testing.B) {
	benchPlacement(b, master.PlacementTwoChoice)
}

func benchPlacement(b *testing.B, p master.Placement) {
	var imb float64
	for i := 0; i < b.N; i++ {
		res := master.Run(master.Config{
			Nodes: 16, Keys: 100, RowSize: 1000, Seed: int64(i), Placement: p,
		})
		imb += res.Imbalance()
	}
	b.ReportMetric(imb/float64(b.N), "imbalance")
}

// --- Bulk-write pipeline -----------------------------------------------------

// BenchmarkIngestSinglePut is the baseline the paper's master pays: one
// synchronous RPC per cell per replica.
func BenchmarkIngestSinglePut(b *testing.B) {
	benchIngest(b, func(c *cluster.Client, entries []Entry) error {
		for _, e := range entries {
			if err := c.Put(e.PK, e.CK, e.Value); err != nil {
				return err
			}
		}
		return nil
	})
}

// BenchmarkIngestBatched64 is the batched bulk-write path at the
// default batch size: entries grouped per destination node, batch
// frames pipelined with a bounded async window, group-committed
// node-side. The acceptance bar is ≥2x over the single-put loop.
func BenchmarkIngestBatched64(b *testing.B) {
	benchIngest(b, func(c *cluster.Client, entries []Entry) error {
		bt := c.NewBatcher(cluster.BatcherOptions{MaxEntries: 64})
		for _, e := range entries {
			if err := bt.Put(e.PK, e.CK, e.Value); err != nil {
				return err
			}
		}
		return bt.Close()
	})
}

func benchIngest(b *testing.B, load func(*cluster.Client, []Entry) error) {
	cl, err := cluster.StartLocal(cluster.LocalOptions{
		Nodes: 4, Storage: storage.Options{DisableWAL: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	entries := make([]Entry, 0, 4096)
	for p := 0; p < 64; p++ {
		pk := fmt.Sprintf("ingest-%04d", p)
		for e := 0; e < 64; e++ {
			entries = append(entries, Entry{
				PK: pk, CK: []byte(fmt.Sprintf("%06d", e)), Value: []byte{byte(e % 4), 1, 2, 3},
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := load(cl.Client(), entries); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cellsPerSec := float64(len(entries)) * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(cellsPerSec, "cells/sec")
}

// BenchmarkClusterMixedRW drives concurrent Get+Put traffic (3 reads
// per write) against a 4-node cluster at replication factor 2 — the
// workload where the nodes' sharded engines have to absorb parallel
// reads and replicated writes at once. Lock-contention regressions in
// the engine's hot path show up here before they show up in prod.
func BenchmarkClusterMixedRW(b *testing.B) {
	cl, err := cluster.StartLocal(cluster.LocalOptions{
		Nodes: 4, ReplicationFactor: 2,
		Storage: storage.Options{DisableWAL: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	c := cl.Client()
	const parts = 32
	val := make([]byte, 64)
	for p := 0; p < parts; p++ {
		pk := fmt.Sprintf("mixed-%03d", p)
		for i := 0; i < 64; i++ {
			if err := c.Put(pk, []byte(fmt.Sprintf("%06d", i)), val); err != nil {
				b.Fatal(err)
			}
		}
	}
	var goroutine atomic.Int64
	var benchErr atomic.Pointer[error] // Fatal must not run on a RunParallel worker
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(goroutine.Add(1)) * 7919
		for pb.Next() {
			pk := fmt.Sprintf("mixed-%03d", i%parts)
			ck := []byte(fmt.Sprintf("%06d", i%64))
			var err error
			if i%4 == 0 {
				err = c.Put(pk, ck, val)
			} else {
				_, _, err = c.Get(pk, ck)
			}
			if err != nil {
				benchErr.CompareAndSwap(nil, &err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	if errp := benchErr.Load(); errp != nil {
		b.Fatal(*errp)
	}
	opsPerSec := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(opsPerSec, "ops/sec")
}

// BenchmarkRebalance measures the elastic topology end to end: a
// 3-node cluster keeps ingesting and reading while a fourth node
// joins. One iteration is one full join (preload, live traffic,
// AddNode, verification-free teardown); the metrics report the
// moved-cell count, the epoch-flip pause (the only client-visible
// interruption) and the operation throughput sustained alongside the
// join. `make bench-rebalance` runs this.
func BenchmarkRebalance(b *testing.B) {
	var lastReport *cluster.RebalanceReport
	var lastOps int64
	var lastJoin time.Duration
	for i := 0; i < b.N; i++ {
		cl, err := cluster.StartLocal(cluster.LocalOptions{
			Nodes:   3,
			Storage: storage.Options{DisableWAL: true, FlushThreshold: 256 << 10},
		})
		if err != nil {
			b.Fatal(err)
		}
		c := cl.Client()
		key := func(i int) string { return fmt.Sprintf("cell-%06d", i) }
		const preload, liveWrites = 6000, 2000
		bt := c.NewBatcher(cluster.BatcherOptions{MaxEntries: 128})
		for i := 0; i < preload; i++ {
			if err := bt.Put(key(i), []byte("ck"), []byte(key(i))); err != nil {
				b.Fatal(err)
			}
		}
		if err := bt.Close(); err != nil {
			b.Fatal(err)
		}

		var stop atomic.Bool
		var ops atomic.Int64
		var trafficErr atomic.Pointer[error]
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := preload; i < preload+liveWrites && !stop.Load(); i++ {
				if err := c.Put(key(i), []byte("ck"), []byte(key(i))); err != nil {
					trafficErr.CompareAndSwap(nil, &err)
					return
				}
				ops.Add(1)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i = (i + 13) % preload {
				if _, _, err := c.Get(key(i), []byte("ck")); err != nil {
					trafficErr.CompareAndSwap(nil, &err)
					return
				}
				ops.Add(1)
			}
		}()
		joinStart := time.Now()
		_, report, err := cl.AddNode()
		joinDur := time.Since(joinStart)
		stop.Store(true)
		wg.Wait()
		if err != nil {
			b.Fatal(err)
		}
		if errp := trafficErr.Load(); errp != nil {
			b.Fatalf("traffic failed during join: %v", *errp)
		}
		lastReport, lastOps, lastJoin = report, ops.Load(), joinDur
		cl.Close()
	}
	if lastReport != nil {
		b.ReportMetric(float64(lastReport.CellsStreamed), "cells_moved")
		b.ReportMetric(float64(lastReport.FlipDuration.Microseconds()), "flip_pause_us")
		b.ReportMetric(float64(lastOps)/lastJoin.Seconds(), "live_ops/sec")
	}
}

// BenchmarkRepair measures the anti-entropy pass end to end on a
// 4-node rf=2 cluster: one iteration seeds a dataset (every cell of
// which carries per-replica version skew, because each replica stamps
// fan-out writes independently — exactly what repair exists to settle),
// plants pre-stamped winners on single replicas for a slice of keys
// (the state dropped dual-write forwards leave), runs one
// Cluster.Repair, then runs a second pass over the now-converged
// cluster. The metrics report cells reconciled per second of repair
// wall time and the cost of the digest-only pass that ships nothing.
// `make bench-repair` runs this.
func BenchmarkRepair(b *testing.B) {
	const (
		preload  = 4000
		diverged = 800
		rf       = 2
	)
	var lastShipped int64
	var lastRepair, lastConverged time.Duration
	for i := 0; i < b.N; i++ {
		cl, err := cluster.StartLocal(cluster.LocalOptions{
			Nodes:             4,
			ReplicationFactor: rf,
			Storage:           storage.Options{DisableWAL: true, FlushThreshold: 256 << 10},
		})
		if err != nil {
			b.Fatal(err)
		}
		c := cl.Client()
		key := func(i int) string { return fmt.Sprintf("cell-%06d", i) }
		bt := c.NewBatcher(cluster.BatcherOptions{MaxEntries: 128})
		for i := 0; i < preload; i++ {
			if err := bt.Put(key(i), []byte("ck"), []byte(key(i))); err != nil {
				b.Fatal(err)
			}
		}
		if err := bt.Close(); err != nil {
			b.Fatal(err)
		}
		// Plant a winner on one replica of each diverged key; the other
		// replica never sees it until repair ships it over.
		topo := cl.Topology()
		engines := make(map[NodeID]*storage.Engine)
		for _, n := range cl.Nodes {
			engines[n.ID()] = n.Engine()
		}
		for i := 0; i < diverged; i++ {
			pk := key(i)
			target := topo.Replicas(pk, rf)[i%rf]
			if err := engines[target].PutBatch([]Entry{{
				PK: pk, CK: []byte("ck"), Value: []byte("winner"),
				Ver: Version{Seq: uint64(1)<<30 + uint64(i), Node: uint16(target)},
			}}); err != nil {
				b.Fatal(err)
			}
		}

		start := time.Now()
		rep, err := cl.Repair(rf)
		if err != nil {
			b.Fatal(err)
		}
		repairDur := time.Since(start)
		if rep.CellsShipped == 0 {
			b.Fatal("repair shipped nothing over a diverged cluster")
		}
		start = time.Now()
		rep2, err := cl.Repair(rf)
		if err != nil {
			b.Fatal(err)
		}
		convergedDur := time.Since(start)
		if rep2.CellsShipped != 0 {
			b.Fatalf("converged pass shipped %d cells", rep2.CellsShipped)
		}
		lastShipped, lastRepair, lastConverged = rep.CellsShipped, repairDur, convergedDur
		cl.Close()
	}
	b.ReportMetric(float64(lastShipped), "cells_shipped")
	b.ReportMetric(float64(lastShipped)/lastRepair.Seconds(), "cells_reconciled/sec")
	b.ReportMetric(float64(lastConverged.Milliseconds()), "converged_digest_ms")
}

// BenchmarkVerboseMaster ablates the Section V-B per-message extras on
// the real cluster.
func BenchmarkVerboseMaster(b *testing.B) { benchRealMaster(b, true) }

// BenchmarkPlainMaster is the optimized-master counterpart.
func BenchmarkPlainMaster(b *testing.B) { benchRealMaster(b, false) }

func benchRealMaster(b *testing.B, verbose bool) {
	cl, err := cluster.StartLocal(cluster.LocalOptions{
		Nodes: 4, Storage: storage.Options{DisableWAL: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	c := cl.Client()
	pks := make([]string, 200)
	for p := range pks {
		pk := fmt.Sprintf("cube-%04d", p)
		pks[p] = pk
		for e := 0; e < 20; e++ {
			c.Put(pk, []byte(fmt.Sprintf("%04d", e)), []byte{byte(e % 4)})
		}
	}
	cl.FlushAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CountAll(pks, cluster.MasterOptions{Verbose: verbose}); err != nil {
			b.Fatal(err)
		}
	}
}
